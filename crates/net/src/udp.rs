//! UDP datagram encoding with pseudo-header checksums.

use std::net::Ipv4Addr;

use crate::checksum;

/// Length of the UDP header.
pub const UDP_HEADER_LEN: usize = 8;

/// A parsed UDP datagram.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UdpDatagram {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

impl UdpDatagram {
    /// Builds a datagram.
    pub fn new(src_port: u16, dst_port: u16, payload: Vec<u8>) -> UdpDatagram {
        UdpDatagram {
            src_port,
            dst_port,
            payload,
        }
    }

    /// Serializes with a checksum over the IPv4 pseudo-header.
    pub fn encode(&self, src: Ipv4Addr, dst: Ipv4Addr) -> Vec<u8> {
        let len = (UDP_HEADER_LEN + self.payload.len()) as u16;
        let mut out = Vec::with_capacity(len as usize);
        out.extend_from_slice(&self.src_port.to_be_bytes());
        out.extend_from_slice(&self.dst_port.to_be_bytes());
        out.extend_from_slice(&len.to_be_bytes());
        out.extend_from_slice(&[0, 0]);
        out.extend_from_slice(&self.payload);
        let mut acc = checksum::pseudo_header_sum(src, dst, 17, len);
        acc = checksum::sum(&out, acc);
        let mut c = checksum::finish(acc);
        if c == 0 {
            c = 0xffff; // RFC 768: transmitted-zero means "no checksum"
        }
        out[6..8].copy_from_slice(&c.to_be_bytes());
        out
    }

    /// Parses and verifies (when a checksum is present).
    pub fn decode(bytes: &[u8], src: Ipv4Addr, dst: Ipv4Addr) -> Option<UdpDatagram> {
        if bytes.len() < UDP_HEADER_LEN {
            return None;
        }
        let len = u16::from_be_bytes([bytes[4], bytes[5]]) as usize;
        if len < UDP_HEADER_LEN || len > bytes.len() {
            return None;
        }
        let wire_sum = u16::from_be_bytes([bytes[6], bytes[7]]);
        if wire_sum != 0 {
            let acc = checksum::pseudo_header_sum(src, dst, 17, len as u16);
            if checksum::finish(checksum::sum(&bytes[..len], acc)) != 0 {
                return None;
            }
        }
        Some(UdpDatagram {
            src_port: u16::from_be_bytes([bytes[0], bytes[1]]),
            dst_port: u16::from_be_bytes([bytes[2], bytes[3]]),
            payload: bytes[UDP_HEADER_LEN..len].to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn roundtrip_with_checksum() {
        let d = UdpDatagram::new(5001, 5201, b"nuttcp payload".to_vec());
        let bytes = d.encode(ip("10.0.0.5"), ip("10.0.0.9"));
        assert_eq!(
            UdpDatagram::decode(&bytes, ip("10.0.0.5"), ip("10.0.0.9")),
            Some(d)
        );
    }

    #[test]
    fn payload_corruption_detected() {
        let d = UdpDatagram::new(1, 2, vec![9; 64]);
        let mut bytes = d.encode(ip("10.0.0.5"), ip("10.0.0.9"));
        bytes[20] ^= 0xff;
        assert_eq!(
            UdpDatagram::decode(&bytes, ip("10.0.0.5"), ip("10.0.0.9")),
            None
        );
    }

    #[test]
    fn wrong_pseudo_header_detected() {
        let d = UdpDatagram::new(1, 2, vec![9; 16]);
        let bytes = d.encode(ip("10.0.0.5"), ip("10.0.0.9"));
        // NAT rewrote the source without fixing the checksum.
        assert_eq!(
            UdpDatagram::decode(&bytes, ip("10.0.0.6"), ip("10.0.0.9")),
            None
        );
    }

    #[test]
    fn trailing_ethernet_padding_ignored() {
        let d = UdpDatagram::new(1, 2, vec![3; 4]);
        let mut bytes = d.encode(ip("10.0.0.5"), ip("10.0.0.9"));
        bytes.extend_from_slice(&[0; 30]);
        let q = UdpDatagram::decode(&bytes, ip("10.0.0.5"), ip("10.0.0.9")).unwrap();
        assert_eq!(q.payload, vec![3; 4]);
    }

    #[test]
    fn empty_payload_ok() {
        let d = UdpDatagram::new(68, 67, Vec::new());
        let bytes = d.encode(ip("0.0.0.0"), ip("255.255.255.255"));
        assert_eq!(
            UdpDatagram::decode(&bytes, ip("0.0.0.0"), ip("255.255.255.255")),
            Some(d)
        );
    }
}
