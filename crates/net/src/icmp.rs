//! ICMP echo (ping) encoding.

use crate::checksum;

/// ICMP message subset used by the latency experiments.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IcmpMessage {
    /// Echo request (type 8).
    EchoRequest {
        /// Identifier (ping process id).
        ident: u16,
        /// Sequence number.
        seq: u16,
        /// Payload (timestamp etc.).
        payload: Vec<u8>,
    },
    /// Echo reply (type 0).
    EchoReply {
        /// Identifier echoed from the request.
        ident: u16,
        /// Sequence echoed from the request.
        seq: u16,
        /// Payload echoed from the request.
        payload: Vec<u8>,
    },
}

impl IcmpMessage {
    /// The reply matching this request.
    ///
    /// Returns `None` for non-request messages.
    pub fn reply(&self) -> Option<IcmpMessage> {
        match self {
            IcmpMessage::EchoRequest {
                ident,
                seq,
                payload,
            } => Some(IcmpMessage::EchoReply {
                ident: *ident,
                seq: *seq,
                payload: payload.clone(),
            }),
            IcmpMessage::EchoReply { .. } => None,
        }
    }

    /// Serializes with checksum.
    pub fn encode(&self) -> Vec<u8> {
        let (ty, ident, seq, payload) = match self {
            IcmpMessage::EchoRequest {
                ident,
                seq,
                payload,
            } => (8u8, *ident, *seq, payload),
            IcmpMessage::EchoReply {
                ident,
                seq,
                payload,
            } => (0u8, *ident, *seq, payload),
        };
        let mut out = Vec::with_capacity(8 + payload.len());
        out.push(ty);
        out.push(0); // code
        out.extend_from_slice(&[0, 0]); // checksum placeholder
        out.extend_from_slice(&ident.to_be_bytes());
        out.extend_from_slice(&seq.to_be_bytes());
        out.extend_from_slice(payload);
        let c = checksum::checksum(&out);
        out[2..4].copy_from_slice(&c.to_be_bytes());
        out
    }

    /// Parses and verifies.
    pub fn decode(bytes: &[u8]) -> Option<IcmpMessage> {
        if bytes.len() < 8 || !checksum::verify(bytes) {
            return None;
        }
        let ident = u16::from_be_bytes([bytes[4], bytes[5]]);
        let seq = u16::from_be_bytes([bytes[6], bytes[7]]);
        let payload = bytes[8..].to_vec();
        match (bytes[0], bytes[1]) {
            (8, 0) => Some(IcmpMessage::EchoRequest {
                ident,
                seq,
                payload,
            }),
            (0, 0) => Some(IcmpMessage::EchoReply {
                ident,
                seq,
                payload,
            }),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn echo_roundtrip() {
        let req = IcmpMessage::EchoRequest {
            ident: 0x1234,
            seq: 7,
            payload: vec![0xab; 56],
        };
        let bytes = req.encode();
        assert_eq!(IcmpMessage::decode(&bytes), Some(req.clone()));
        let rep = req.reply().unwrap();
        assert_eq!(IcmpMessage::decode(&rep.encode()), Some(rep.clone()));
        assert!(rep.reply().is_none());
    }

    #[test]
    fn corruption_detected() {
        let req = IcmpMessage::EchoRequest {
            ident: 1,
            seq: 1,
            payload: vec![1, 2, 3],
        };
        let mut bytes = req.encode();
        bytes[9] ^= 0x80;
        assert_eq!(IcmpMessage::decode(&bytes), None);
    }

    #[test]
    fn short_rejected() {
        assert_eq!(IcmpMessage::decode(&[8, 0, 0]), None);
    }
}
