//! Source NAT: the alternative to bridging for linking VIFs to the NIC.
//!
//! The paper mentions NAT alongside bridging as a netback-to-NIC linking
//! technique. This is a classic endpoint-independent SNAT: outbound flows
//! get an external port on the gateway address; inbound packets to that
//! port are rewritten back.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use crate::ipv4::IpProto;

/// A transport endpoint.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Endpoint {
    /// IPv4 address.
    pub ip: Ipv4Addr,
    /// Transport port.
    pub port: u16,
}

#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct FlowKey {
    proto: u8,
    inside: Endpoint,
}

/// A SNAT table translating inside endpoints to gateway ports.
#[derive(Clone, Debug)]
pub struct Nat {
    /// The external (gateway) address packets are rewritten to.
    pub external_ip: Ipv4Addr,
    next_port: u16,
    out: HashMap<FlowKey, u16>,
    back: HashMap<(u8, u16), Endpoint>,
}

impl Nat {
    /// First external port handed out.
    pub const PORT_BASE: u16 = 20000;

    /// Creates a NAT in front of `external_ip`.
    pub fn new(external_ip: Ipv4Addr) -> Nat {
        Nat {
            external_ip,
            next_port: Self::PORT_BASE,
            out: HashMap::new(),
            back: HashMap::new(),
        }
    }

    /// Translates an outbound packet's source; returns the external
    /// endpoint to rewrite it to.
    pub fn translate_out(&mut self, proto: IpProto, inside: Endpoint) -> Endpoint {
        let key = FlowKey {
            proto: proto.value(),
            inside,
        };
        let port = *self.out.entry(key).or_insert_with(|| {
            let p = self.next_port;
            self.next_port = self.next_port.wrapping_add(1).max(Self::PORT_BASE);
            self.back.insert((proto.value(), p), inside);
            p
        });
        Endpoint {
            ip: self.external_ip,
            port,
        }
    }

    /// Translates an inbound packet's destination back to the inside
    /// endpoint, or `None` when no flow matches (unsolicited — dropped).
    pub fn translate_in(&self, proto: IpProto, dst_port: u16) -> Option<Endpoint> {
        self.back.get(&(proto.value(), dst_port)).copied()
    }

    /// Active flow count.
    pub fn flows(&self) -> usize {
        self.out.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ep(ip: &str, port: u16) -> Endpoint {
        Endpoint {
            ip: ip.parse().unwrap(),
            port,
        }
    }

    #[test]
    fn outbound_maps_and_inbound_reverses() {
        let mut nat = Nat::new("192.168.1.50".parse().unwrap());
        let inside = ep("10.0.0.5", 43210);
        let outside = nat.translate_out(IpProto::Tcp, inside);
        assert_eq!(outside.ip, "192.168.1.50".parse::<Ipv4Addr>().unwrap());
        assert_eq!(nat.translate_in(IpProto::Tcp, outside.port), Some(inside));
    }

    #[test]
    fn same_flow_reuses_mapping() {
        let mut nat = Nat::new("192.168.1.50".parse().unwrap());
        let inside = ep("10.0.0.5", 43210);
        let a = nat.translate_out(IpProto::Udp, inside);
        let b = nat.translate_out(IpProto::Udp, inside);
        assert_eq!(a, b);
        assert_eq!(nat.flows(), 1);
    }

    #[test]
    fn distinct_flows_get_distinct_ports() {
        let mut nat = Nat::new("192.168.1.50".parse().unwrap());
        let a = nat.translate_out(IpProto::Tcp, ep("10.0.0.5", 1000));
        let b = nat.translate_out(IpProto::Tcp, ep("10.0.0.6", 1000));
        let c = nat.translate_out(IpProto::Udp, ep("10.0.0.5", 1000));
        assert_ne!(a.port, b.port);
        assert_ne!(a.port, c.port);
        assert_eq!(nat.flows(), 3);
    }

    #[test]
    fn unsolicited_inbound_dropped() {
        let nat = Nat::new("192.168.1.50".parse().unwrap());
        assert_eq!(nat.translate_in(IpProto::Tcp, 12345), None);
    }
}
