//! Network substrate for the Kite reproduction: real packet codecs and the
//! forwarding machinery a network driver domain is made of.
//!
//! Everything on the simulated wire is real bytes — Ethernet frames carry
//! IPv4/ARP payloads with valid checksums, verified end-to-end by the
//! integration tests. Modules:
//!
//! * [`ether`] — Ethernet II framing, MAC addresses, wire-length model;
//! * [`arp`] — ARP codec + per-host cache with timeout;
//! * [`ipv4`] / [`icmp`] / [`udp`] / [`tcp`] — protocol codecs with RFC 1071
//!   checksums ([`checksum`]);
//! * [`flow`] — deterministic Toeplitz/RSS flow hashing for multi-queue
//!   steering;
//! * [`bridge`] — the learning bridge Kite's network application manages;
//! * [`nat`] — source NAT, the alternative VIF-to-NIC linking technique;
//! * [`dhcp`] — RFC 2131 wire format for the daemon-VM experiment;
//! * [`iface`] — the interface table `ifconfig`/`brconfig` operate on.

pub mod arp;
pub mod bridge;
pub mod checksum;
pub mod dhcp;
pub mod ether;
pub mod flow;
pub mod icmp;
pub mod iface;
pub mod ipv4;
pub mod nat;
pub mod tcp;
pub mod udp;

pub use arp::{ArpCache, ArpOp, ArpPacket};
pub use bridge::{Bridge, BridgePort, Forward};
pub use dhcp::{DhcpMessage, DhcpMessageType};
pub use ether::{EtherType, EthernetFrame, MacAddr, ETH_MTU};
pub use flow::{flow_hash, steer, RSS_KEY};
pub use icmp::IcmpMessage;
pub use iface::{IfKind, IfTable, Interface};
pub use ipv4::{IpProto, Ipv4Packet};
pub use nat::{Endpoint, Nat};
pub use tcp::{SlidingWindow, TcpSegment};
pub use udp::UdpDatagram;
