//! ARP: IPv4-over-Ethernet address resolution, plus a per-host cache.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use kite_sim::Nanos;

use crate::ether::MacAddr;

/// ARP operation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ArpOp {
    /// Who-has request (1).
    Request,
    /// Is-at reply (2).
    Reply,
}

/// A parsed ARP packet (Ethernet/IPv4 flavor only).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ArpPacket {
    /// Operation.
    pub op: ArpOp,
    /// Sender hardware address.
    pub sha: MacAddr,
    /// Sender protocol address.
    pub spa: Ipv4Addr,
    /// Target hardware address (zero in requests).
    pub tha: MacAddr,
    /// Target protocol address.
    pub tpa: Ipv4Addr,
}

/// Wire length of an Ethernet/IPv4 ARP packet.
pub const ARP_LEN: usize = 28;

impl ArpPacket {
    /// Builds a who-has request.
    pub fn request(sha: MacAddr, spa: Ipv4Addr, tpa: Ipv4Addr) -> ArpPacket {
        ArpPacket {
            op: ArpOp::Request,
            sha,
            spa,
            tha: MacAddr::ZERO,
            tpa,
        }
    }

    /// Builds the matching is-at reply.
    pub fn reply_to(&self, mac: MacAddr) -> ArpPacket {
        ArpPacket {
            op: ArpOp::Reply,
            sha: mac,
            spa: self.tpa,
            tha: self.sha,
            tpa: self.spa,
        }
    }

    /// Serializes to wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(ARP_LEN);
        out.extend_from_slice(&1u16.to_be_bytes()); // htype ethernet
        out.extend_from_slice(&0x0800u16.to_be_bytes()); // ptype ipv4
        out.push(6); // hlen
        out.push(4); // plen
        out.extend_from_slice(
            &match self.op {
                ArpOp::Request => 1u16,
                ArpOp::Reply => 2u16,
            }
            .to_be_bytes(),
        );
        out.extend_from_slice(&self.sha.0);
        out.extend_from_slice(&self.spa.octets());
        out.extend_from_slice(&self.tha.0);
        out.extend_from_slice(&self.tpa.octets());
        out
    }

    /// Parses wire bytes.
    pub fn decode(bytes: &[u8]) -> Option<ArpPacket> {
        if bytes.len() < ARP_LEN {
            return None;
        }
        if bytes[0..2] != [0, 1] || bytes[2..4] != [0x08, 0] || bytes[4] != 6 || bytes[5] != 4 {
            return None;
        }
        let op = match u16::from_be_bytes([bytes[6], bytes[7]]) {
            1 => ArpOp::Request,
            2 => ArpOp::Reply,
            _ => return None,
        };
        Some(ArpPacket {
            op,
            sha: MacAddr(bytes[8..14].try_into().ok()?),
            spa: Ipv4Addr::new(bytes[14], bytes[15], bytes[16], bytes[17]),
            tha: MacAddr(bytes[18..24].try_into().ok()?),
            tpa: Ipv4Addr::new(bytes[24], bytes[25], bytes[26], bytes[27]),
        })
    }
}

/// A host's ARP cache with entry timeout.
#[derive(Clone, Debug)]
pub struct ArpCache {
    entries: HashMap<Ipv4Addr, (MacAddr, Nanos)>,
    /// Entry lifetime.
    pub timeout: Nanos,
}

impl ArpCache {
    /// Creates a cache with the conventional 60 s timeout.
    pub fn new() -> ArpCache {
        ArpCache {
            entries: HashMap::new(),
            timeout: Nanos::from_secs(60),
        }
    }

    /// Learns or refreshes a binding at time `now`.
    pub fn learn(&mut self, ip: Ipv4Addr, mac: MacAddr, now: Nanos) {
        self.entries.insert(ip, (mac, now));
    }

    /// Looks up a live binding.
    pub fn lookup(&self, ip: Ipv4Addr, now: Nanos) -> Option<MacAddr> {
        self.entries.get(&ip).and_then(|&(mac, at)| {
            if now.saturating_sub(at) < self.timeout {
                Some(mac)
            } else {
                None
            }
        })
    }
}

impl Default for ArpCache {
    fn default() -> Self {
        ArpCache::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn request_reply_roundtrip() {
        let req = ArpPacket::request(MacAddr::local(1), ip("10.0.0.1"), ip("10.0.0.2"));
        let bytes = req.encode();
        assert_eq!(bytes.len(), ARP_LEN);
        assert_eq!(ArpPacket::decode(&bytes), Some(req));

        let rep = req.reply_to(MacAddr::local(2));
        assert_eq!(rep.op, ArpOp::Reply);
        assert_eq!(rep.spa, ip("10.0.0.2"));
        assert_eq!(rep.tpa, ip("10.0.0.1"));
        assert_eq!(rep.tha, MacAddr::local(1));
        assert_eq!(ArpPacket::decode(&rep.encode()), Some(rep));
    }

    #[test]
    fn non_ethernet_ipv4_rejected() {
        let req = ArpPacket::request(MacAddr::local(1), ip("10.0.0.1"), ip("10.0.0.2"));
        let mut bytes = req.encode();
        bytes[1] = 6; // htype = IEEE802
        assert_eq!(ArpPacket::decode(&bytes), None);
    }

    #[test]
    fn cache_learns_and_expires() {
        let mut c = ArpCache::new();
        let t0 = Nanos::ZERO;
        c.learn(ip("10.0.0.2"), MacAddr::local(2), t0);
        assert_eq!(c.lookup(ip("10.0.0.2"), t0), Some(MacAddr::local(2)));
        assert_eq!(c.lookup(ip("10.0.0.3"), t0), None);
        // Expired after the timeout.
        let later = Nanos::from_secs(61);
        assert_eq!(c.lookup(ip("10.0.0.2"), later), None);
        // Refresh resets the clock.
        c.learn(ip("10.0.0.2"), MacAddr::local(9), later);
        assert_eq!(
            c.lookup(ip("10.0.0.2"), later + Nanos::from_secs(59)),
            Some(MacAddr::local(9))
        );
    }
}
