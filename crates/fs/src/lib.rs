//! A small extent filesystem for the storage-domain workloads.
//!
//! Filebench's fileserver/webserver/MongoDB personalities, sysbench file
//! I/O and the MySQL tablespace model all run over [`fs::Fs`], mounted by
//! the guest on its blkfront device. File operations return the device
//! I/Os they imply, so the block traffic that reaches Kite's blkback —
//! sequential runs on a fresh FS, scattered runs after create/delete churn,
//! cache-filtered reads — emerges from real metadata ([`alloc`]) and a real
//! LRU page cache ([`cache`]).

pub mod alloc;
pub mod cache;
pub mod fs;

pub use alloc::{Extent, ExtentAllocator};
pub use cache::ReadCache;
pub use fs::{DevIo, FileStat, Fs, FsError, Ino, ReadPlan};
