//! Page cache model: decides which reads hit the device.
//!
//! The cache tracks *which* device blocks are resident, not their bytes —
//! data always lives on the (sparse, real) device model, so correctness
//! never depends on the cache; only I/O counts and therefore timing do.
//! The paper flushes read buffers and sizes datasets beyond RAM precisely
//! so the device path is exercised; [`ReadCache::drop_all`] reproduces the
//! flush.

use std::collections::HashMap;

/// An LRU set of resident device blocks.
#[derive(Clone, Debug)]
pub struct ReadCache {
    capacity: usize,
    // block -> last-use tick.
    resident: HashMap<u64, u64>,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl ReadCache {
    /// Creates a cache holding up to `capacity` blocks.
    pub fn new(capacity: usize) -> ReadCache {
        ReadCache {
            capacity,
            resident: HashMap::new(),
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Checks residency of a block, updating recency and hit/miss stats.
    /// Returns `true` on a hit.
    pub fn access(&mut self, block: u64) -> bool {
        self.tick += 1;
        if let Some(t) = self.resident.get_mut(&block) {
            *t = self.tick;
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// Inserts a block (after a device read or a write), evicting LRU.
    pub fn insert(&mut self, block: u64) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if self.resident.len() >= self.capacity && !self.resident.contains_key(&block) {
            // Evict the least recently used entry. Linear scan is fine: the
            // cache is consulted per multi-KiB block, not per byte.
            if let Some((&lru, _)) = self.resident.iter().min_by_key(|&(_, &t)| t) {
                self.resident.remove(&lru);
            }
        }
        self.resident.insert(block, self.tick);
    }

    /// Invalidates one block (file deletion).
    pub fn invalidate(&mut self, block: u64) {
        self.resident.remove(&block);
    }

    /// Drops everything (`echo 3 > /proc/sys/vm/drop_caches`).
    pub fn drop_all(&mut self) {
        self.resident.clear();
    }

    /// Resident block count.
    pub fn len(&self) -> usize {
        self.resident.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.resident.is_empty()
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_insert() {
        let mut c = ReadCache::new(4);
        assert!(!c.access(1));
        c.insert(1);
        assert!(c.access(1));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = ReadCache::new(2);
        c.insert(1);
        c.insert(2);
        c.access(1); // 1 is now MRU
        c.insert(3); // evicts 2
        assert!(c.access(1));
        assert!(!c.access(2));
        assert!(c.access(3));
    }

    #[test]
    fn capacity_respected() {
        let mut c = ReadCache::new(3);
        for b in 0..10 {
            c.insert(b);
        }
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn drop_all_empties() {
        let mut c = ReadCache::new(8);
        c.insert(1);
        c.insert(2);
        c.drop_all();
        assert!(c.is_empty());
        assert!(!c.access(1));
    }

    #[test]
    fn zero_capacity_never_caches() {
        let mut c = ReadCache::new(0);
        c.insert(1);
        assert!(!c.access(1));
    }

    #[test]
    fn invalidate_single() {
        let mut c = ReadCache::new(8);
        c.insert(1);
        c.insert(2);
        c.invalidate(1);
        assert!(!c.access(1));
        assert!(c.access(2));
    }
}
