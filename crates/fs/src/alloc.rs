//! Extent allocator: first-fit over a coalescing free list.
//!
//! Files are stored as extents (contiguous block runs). Allocation prefers
//! one contiguous run but will split across free fragments — after enough
//! create/delete churn (the Filebench fileserver personality), files
//! fragment and storage workloads issue shorter, more scattered I/O, which
//! is exactly the effect the paper's macrobenchmarks exercise.

use std::collections::BTreeMap;

/// A contiguous run of blocks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Extent {
    /// First block of the run.
    pub start: u64,
    /// Number of blocks.
    pub len: u64,
}

/// First-fit extent allocator with free-list coalescing.
#[derive(Clone, Debug)]
pub struct ExtentAllocator {
    /// start -> len of each free run.
    free: BTreeMap<u64, u64>,
    total: u64,
    free_blocks: u64,
}

impl ExtentAllocator {
    /// Creates an allocator over `total` blocks, all free.
    pub fn new(total: u64) -> ExtentAllocator {
        let mut free = BTreeMap::new();
        if total > 0 {
            free.insert(0, total);
        }
        ExtentAllocator {
            free,
            total,
            free_blocks: total,
        }
    }

    /// Total managed blocks.
    pub fn total_blocks(&self) -> u64 {
        self.total
    }

    /// Currently free blocks.
    pub fn free_blocks(&self) -> u64 {
        self.free_blocks
    }

    /// Number of free fragments (fragmentation metric).
    pub fn fragments(&self) -> usize {
        self.free.len()
    }

    /// Allocates `n` blocks, preferring contiguity. Returns the extents,
    /// or `None` if space is insufficient (nothing is allocated then).
    pub fn alloc(&mut self, n: u64) -> Option<Vec<Extent>> {
        if n == 0 {
            return Some(Vec::new());
        }
        if n > self.free_blocks {
            return None;
        }
        // Pass 1: a single run that fits entirely (first fit).
        let whole = self
            .free
            .iter()
            .find(|&(_, &len)| len >= n)
            .map(|(&s, _)| s);
        if let Some(start) = whole {
            let len = self.free.remove(&start).expect("present");
            if len > n {
                self.free.insert(start + n, len - n);
            }
            self.free_blocks -= n;
            return Some(vec![Extent { start, len: n }]);
        }
        // Pass 2: gather fragments front to back.
        let mut out = Vec::new();
        let mut need = n;
        let mut taken = Vec::new();
        for (&s, &len) in self.free.iter() {
            let take = len.min(need);
            taken.push((s, len, take));
            out.push(Extent {
                start: s,
                len: take,
            });
            need -= take;
            if need == 0 {
                break;
            }
        }
        debug_assert_eq!(need, 0, "free_blocks accounting guaranteed space");
        for (s, len, take) in taken {
            self.free.remove(&s);
            if len > take {
                self.free.insert(s + take, len - take);
            }
        }
        self.free_blocks -= n;
        Some(out)
    }

    /// Frees an extent, coalescing with neighbors.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) on double-free detected via overlap with an
    /// existing free run.
    pub fn free_extent(&mut self, e: Extent) {
        if e.len == 0 {
            return;
        }
        let mut start = e.start;
        let mut len = e.len;
        // Coalesce with the predecessor.
        if let Some((&ps, &pl)) = self.free.range(..start).next_back() {
            debug_assert!(ps + pl <= start, "double free / overlap");
            if ps + pl == start {
                self.free.remove(&ps);
                start = ps;
                len += pl;
            }
        }
        // Coalesce with the successor.
        if let Some((&ns, &nl)) = self.free.range(start + len..).next() {
            if ns == start + len {
                self.free.remove(&ns);
                len += nl;
            }
        }
        debug_assert!(
            self.free.range(start..start + len).next().is_none(),
            "double free / overlap"
        );
        self.free.insert(start, len);
        self.free_blocks += e.len;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_when_possible() {
        let mut a = ExtentAllocator::new(100);
        let e = a.alloc(10).unwrap();
        assert_eq!(e, vec![Extent { start: 0, len: 10 }]);
        assert_eq!(a.free_blocks(), 90);
    }

    #[test]
    fn exhaustion_returns_none_without_side_effects() {
        let mut a = ExtentAllocator::new(10);
        assert!(a.alloc(11).is_none());
        assert_eq!(a.free_blocks(), 10);
        assert!(a.alloc(10).is_some());
        assert!(a.alloc(1).is_none());
    }

    #[test]
    fn fragmentation_and_gathering() {
        let mut a = ExtentAllocator::new(30);
        let e1 = a.alloc(10).unwrap();
        let _e2 = a.alloc(10).unwrap();
        let e3 = a.alloc(10).unwrap();
        // Free the first and third runs: two fragments of 10.
        a.free_extent(e1[0]);
        a.free_extent(e3[0]);
        assert_eq!(a.fragments(), 2);
        // Asking for 15 must span both fragments.
        let e = a.alloc(15).unwrap();
        assert_eq!(e.len(), 2);
        assert_eq!(e.iter().map(|x| x.len).sum::<u64>(), 15);
    }

    #[test]
    fn coalescing_rebuilds_contiguity() {
        let mut a = ExtentAllocator::new(30);
        let e1 = a.alloc(10).unwrap();
        let e2 = a.alloc(10).unwrap();
        let e3 = a.alloc(10).unwrap();
        a.free_extent(e2[0]);
        a.free_extent(e1[0]);
        a.free_extent(e3[0]);
        assert_eq!(a.fragments(), 1);
        let e = a.alloc(30).unwrap();
        assert_eq!(e, vec![Extent { start: 0, len: 30 }]);
    }

    #[test]
    fn zero_len_ops_are_noops() {
        let mut a = ExtentAllocator::new(10);
        assert_eq!(a.alloc(0), Some(vec![]));
        a.free_extent(Extent { start: 5, len: 0 });
        assert_eq!(a.free_blocks(), 10);
        assert_eq!(a.fragments(), 1);
    }

    #[test]
    fn accounting_invariant_under_churn() {
        let mut a = ExtentAllocator::new(1000);
        let mut held: Vec<Vec<Extent>> = Vec::new();
        // Deterministic churn pattern.
        for i in 0..200u64 {
            if i % 3 != 2 {
                if let Some(e) = a.alloc(1 + i % 17) {
                    held.push(e);
                }
            } else if !held.is_empty() {
                let es = held.remove((i as usize * 7) % held.len());
                for e in es {
                    a.free_extent(e);
                }
            }
        }
        let held_total: u64 = held.iter().flatten().map(|e| e.len).sum();
        assert_eq!(a.free_blocks() + held_total, 1000);
    }
}
