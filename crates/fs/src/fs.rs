//! The filesystem: names, inodes, extents, and I/O planning.
//!
//! The guest's workloads (Filebench personalities, sysbench file I/O,
//! MySQL's tablespaces) run over this FS mounted on a blkfront device. An
//! operation returns the *device I/Os* it implies — byte-addressed runs the
//! caller pushes through blkfront — so block traffic patterns (sequential
//! runs, fragmentation-induced scatter, cache-filtered reads) emerge from
//! real metadata rather than being postulated.
//!
//! Writes are write-through (each write returns its device I/Os and
//! populates the read cache); partial-block read-modify-write is not
//! modeled, which slightly favors neither OS since both backends see the
//! same stream.

use std::collections::{BTreeMap, HashMap};

use crate::alloc::{Extent, ExtentAllocator};
use crate::cache::ReadCache;

/// An inode number.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Ino(pub u64);

/// Filesystem errors.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FsError {
    /// Name already exists.
    Exists,
    /// No such file.
    NotFound,
    /// Device is full.
    NoSpace,
    /// Read beyond end of file.
    BeyondEof,
}

impl core::fmt::Display for FsError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FsError::Exists => write!(f, "file exists"),
            FsError::NotFound => write!(f, "no such file"),
            FsError::NoSpace => write!(f, "no space left on device"),
            FsError::BeyondEof => write!(f, "read beyond end of file"),
        }
    }
}

impl std::error::Error for FsError {}

/// One device I/O implied by a file operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DevIo {
    /// Starting 512-byte sector on the device.
    pub sector: u64,
    /// Length in bytes.
    pub bytes: usize,
}

/// The plan for a read: which bytes came from cache vs the device.
#[derive(Clone, Debug, Default)]
pub struct ReadPlan {
    /// Device I/Os for the cache misses (merged into runs).
    pub device_ios: Vec<DevIo>,
    /// Bytes served from the page cache.
    pub cached_bytes: usize,
    /// Total bytes read (may be short at EOF).
    pub total_bytes: usize,
}

/// `stat(2)` output.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FileStat {
    /// Inode.
    pub ino: Ino,
    /// Size in bytes.
    pub size: u64,
    /// Number of extents (fragmentation indicator).
    pub extents: usize,
}

#[derive(Clone, Debug)]
struct FileMeta {
    size: u64,
    extents: Vec<Extent>,
}

/// The filesystem.
pub struct Fs {
    /// Block size in bytes (4 KiB).
    pub block_size: usize,
    alloc: ExtentAllocator,
    names: BTreeMap<String, Ino>,
    files: HashMap<Ino, FileMeta>,
    next_ino: u64,
    cache: ReadCache,
}

const SECTOR: u64 = 512;

impl Fs {
    /// Creates (formats) a filesystem over `device_blocks` 4 KiB blocks
    /// with a page cache of `cache_blocks` blocks.
    pub fn format(device_blocks: u64, cache_blocks: usize) -> Fs {
        Fs {
            block_size: 4096,
            alloc: ExtentAllocator::new(device_blocks),
            names: BTreeMap::new(),
            files: HashMap::new(),
            next_ino: 1,
            cache: ReadCache::new(cache_blocks),
        }
    }

    fn sectors_per_block(&self) -> u64 {
        self.block_size as u64 / SECTOR
    }

    /// Creates an empty file.
    pub fn create(&mut self, name: &str) -> Result<Ino, FsError> {
        if self.names.contains_key(name) {
            return Err(FsError::Exists);
        }
        let ino = Ino(self.next_ino);
        self.next_ino += 1;
        self.names.insert(name.to_string(), ino);
        self.files.insert(
            ino,
            FileMeta {
                size: 0,
                extents: Vec::new(),
            },
        );
        Ok(ino)
    }

    /// Resolves a name.
    pub fn lookup(&self, name: &str) -> Result<Ino, FsError> {
        self.names.get(name).copied().ok_or(FsError::NotFound)
    }

    /// `stat`: metadata only, no device I/O.
    pub fn stat(&self, name: &str) -> Result<FileStat, FsError> {
        let ino = self.lookup(name)?;
        let m = &self.files[&ino];
        Ok(FileStat {
            ino,
            size: m.size,
            extents: m.extents.len(),
        })
    }

    /// Deletes a file, freeing its blocks and invalidating cache entries.
    pub fn delete(&mut self, name: &str) -> Result<(), FsError> {
        let ino = self.names.remove(name).ok_or(FsError::NotFound)?;
        let meta = self.files.remove(&ino).expect("names/files in sync");
        for e in meta.extents {
            for b in e.start..e.start + e.len {
                self.cache.invalidate(b);
            }
            self.alloc.free_extent(e);
        }
        Ok(())
    }

    /// File count.
    pub fn file_count(&self) -> usize {
        self.names.len()
    }

    /// Free space in bytes.
    pub fn free_bytes(&self) -> u64 {
        self.alloc.free_blocks() * self.block_size as u64
    }

    /// Drops the page cache (the paper's pre-run flush).
    pub fn drop_caches(&mut self) {
        self.cache.drop_all();
    }

    /// Page-cache hit count (diagnostics).
    pub fn cache_hits(&self) -> u64 {
        self.cache.hits()
    }

    /// The device blocks backing `[offset, offset+len)` of a file, in file
    /// order. The file must already cover the range.
    fn map_range(&self, meta: &FileMeta, offset: u64, len: usize) -> Vec<(u64, usize, usize)> {
        // Returns (device_block, offset_in_block, bytes).
        let mut out = Vec::new();
        let mut remaining = len;
        let mut file_block = offset / self.block_size as u64;
        let mut in_block = (offset % self.block_size as u64) as usize;
        while remaining > 0 {
            // Locate file_block within the extent list.
            let mut fb = file_block;
            let mut dev_block = None;
            for e in &meta.extents {
                if fb < e.len {
                    dev_block = Some(e.start + fb);
                    break;
                }
                fb -= e.len;
            }
            let db = dev_block.expect("range pre-validated against size");
            let n = (self.block_size - in_block).min(remaining);
            out.push((db, in_block, n));
            remaining -= n;
            file_block += 1;
            in_block = 0;
        }
        out
    }

    fn merge_ios(&self, pieces: &[(u64, usize, usize)]) -> Vec<DevIo> {
        let spb = self.sectors_per_block();
        let mut out: Vec<DevIo> = Vec::new();
        for &(block, in_block, bytes) in pieces {
            let sector = block * spb + (in_block as u64) / SECTOR;
            if let Some(last) = out.last_mut() {
                let last_end = last.sector * SECTOR + last.bytes as u64;
                if last_end == sector * SECTOR {
                    last.bytes += bytes;
                    continue;
                }
            }
            out.push(DevIo { sector, bytes });
        }
        out
    }

    /// Writes `len` bytes at `offset`, allocating blocks as needed.
    ///
    /// Returns the device I/Os to perform (write-through).
    pub fn write(&mut self, ino: Ino, offset: u64, len: usize) -> Result<Vec<DevIo>, FsError> {
        if len == 0 {
            return Ok(Vec::new());
        }
        let meta = self.files.get(&ino).ok_or(FsError::NotFound)?;
        let end = offset + len as u64;
        let have_blocks: u64 = meta.extents.iter().map(|e| e.len).sum();
        let need_blocks = end.div_ceil(self.block_size as u64);
        if need_blocks > have_blocks {
            let grow = need_blocks - have_blocks;
            let new = self.alloc.alloc(grow).ok_or(FsError::NoSpace)?;
            let meta = self.files.get_mut(&ino).expect("checked");
            // Merge with the trailing extent when contiguous.
            for e in new {
                match meta.extents.last_mut() {
                    Some(last) if last.start + last.len == e.start => last.len += e.len,
                    _ => meta.extents.push(e),
                }
            }
        }
        let meta = self.files.get_mut(&ino).expect("checked");
        meta.size = meta.size.max(end);
        let meta = self.files[&ino].clone();
        let pieces = self.map_range(&meta, offset, len);
        for &(b, _, _) in &pieces {
            self.cache.insert(b);
        }
        Ok(self.merge_ios(&pieces))
    }

    /// Appends `len` bytes; returns the device I/Os.
    pub fn append(&mut self, ino: Ino, len: usize) -> Result<Vec<DevIo>, FsError> {
        let size = self.files.get(&ino).ok_or(FsError::NotFound)?.size;
        self.write(ino, size, len)
    }

    /// Plans a read of `len` bytes at `offset`, consulting the page cache.
    ///
    /// Short reads at EOF return `total_bytes < len`; reads entirely past
    /// EOF fail.
    pub fn read(&mut self, ino: Ino, offset: u64, len: usize) -> Result<ReadPlan, FsError> {
        let meta = self.files.get(&ino).ok_or(FsError::NotFound)?.clone();
        if offset >= meta.size {
            return if len == 0 {
                Ok(ReadPlan::default())
            } else {
                Err(FsError::BeyondEof)
            };
        }
        let len = len.min((meta.size - offset) as usize);
        let pieces = self.map_range(&meta, offset, len);
        let mut misses = Vec::new();
        let mut cached = 0usize;
        for &(b, in_b, n) in &pieces {
            if self.cache.access(b) {
                cached += n;
            } else {
                self.cache.insert(b);
                misses.push((b, in_b, n));
            }
        }
        Ok(ReadPlan {
            device_ios: self.merge_ios(&misses),
            cached_bytes: cached,
            total_bytes: len,
        })
    }

    /// The size of a file by inode.
    pub fn size(&self, ino: Ino) -> Result<u64, FsError> {
        Ok(self.files.get(&ino).ok_or(FsError::NotFound)?.size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_fs() -> Fs {
        Fs::format(1024, 64) // 4 MiB device, 256 KiB cache
    }

    #[test]
    fn create_lookup_delete() {
        let mut fs = small_fs();
        let ino = fs.create("a.txt").unwrap();
        assert_eq!(fs.lookup("a.txt"), Ok(ino));
        assert_eq!(fs.create("a.txt"), Err(FsError::Exists));
        fs.delete("a.txt").unwrap();
        assert_eq!(fs.lookup("a.txt"), Err(FsError::NotFound));
        assert_eq!(fs.delete("a.txt"), Err(FsError::NotFound));
    }

    #[test]
    fn sequential_write_is_one_device_run() {
        let mut fs = small_fs();
        let ino = fs.create("seq").unwrap();
        let ios = fs.write(ino, 0, 64 * 1024).unwrap();
        assert_eq!(ios.len(), 1, "fresh fs: contiguous allocation");
        assert_eq!(ios[0].bytes, 64 * 1024);
        assert_eq!(fs.size(ino).unwrap(), 64 * 1024);
    }

    #[test]
    fn append_extends_size_and_reuses_tail() {
        let mut fs = small_fs();
        let ino = fs.create("log").unwrap();
        fs.write(ino, 0, 1000).unwrap();
        let ios = fs.append(ino, 1000).unwrap();
        assert_eq!(fs.size(ino).unwrap(), 2000);
        // Append starts mid-block at offset 1000.
        assert_eq!(ios[0].sector, 1, "sector 1 = byte 512, containing 1000");
    }

    #[test]
    fn read_uses_cache_after_write() {
        let mut fs = small_fs();
        let ino = fs.create("f").unwrap();
        fs.write(ino, 0, 8192).unwrap();
        // Write-through populated the cache: read is all hits.
        let plan = fs.read(ino, 0, 8192).unwrap();
        assert_eq!(plan.cached_bytes, 8192);
        assert!(plan.device_ios.is_empty());
        // After a cache flush the same read goes to the device.
        fs.drop_caches();
        let plan = fs.read(ino, 0, 8192).unwrap();
        assert_eq!(plan.cached_bytes, 0);
        assert_eq!(
            plan.device_ios.iter().map(|io| io.bytes).sum::<usize>(),
            8192
        );
    }

    #[test]
    fn short_read_at_eof() {
        let mut fs = small_fs();
        let ino = fs.create("f").unwrap();
        fs.write(ino, 0, 100).unwrap();
        let plan = fs.read(ino, 50, 1000).unwrap();
        assert_eq!(plan.total_bytes, 50);
        assert_eq!(fs.read(ino, 100, 10).err(), Some(FsError::BeyondEof));
        assert_eq!(fs.read(ino, 100, 0).unwrap().total_bytes, 0);
    }

    #[test]
    fn fragmentation_scatters_io() {
        let mut fs = Fs::format(64, 0); // tiny device, no cache
                                        // Fill with interleaved files, delete every other one.
        let inos: Vec<Ino> = (0..8)
            .map(|i| {
                let ino = fs.create(&format!("f{i}")).unwrap();
                fs.write(ino, 0, 8 * 4096).unwrap();
                ino
            })
            .collect();
        let _ = inos;
        for i in (0..8).step_by(2) {
            fs.delete(&format!("f{i}")).unwrap();
        }
        // A new large file must span fragments -> multiple device runs.
        let big = fs.create("big").unwrap();
        let ios = fs.write(big, 0, 20 * 4096).unwrap();
        assert!(ios.len() > 1, "expected scattered I/O, got {ios:?}");
        let stat = fs.stat("big").unwrap();
        assert!(stat.extents > 1);
    }

    #[test]
    fn nospace_reported() {
        let mut fs = Fs::format(4, 0);
        let ino = fs.create("f").unwrap();
        assert_eq!(fs.write(ino, 0, 5 * 4096), Err(FsError::NoSpace));
        // Successful smaller write still fits.
        fs.write(ino, 0, 4 * 4096).unwrap();
    }

    #[test]
    fn delete_frees_space_for_reuse() {
        let mut fs = Fs::format(8, 0);
        let a = fs.create("a").unwrap();
        fs.write(a, 0, 8 * 4096).unwrap();
        fs.delete("a").unwrap();
        let b = fs.create("b").unwrap();
        fs.write(b, 0, 8 * 4096).unwrap();
        assert_eq!(fs.free_bytes(), 0);
    }

    #[test]
    fn stat_counts_extents() {
        let mut fs = small_fs();
        let ino = fs.create("f").unwrap();
        fs.write(ino, 0, 4096 * 3).unwrap();
        let st = fs.stat("f").unwrap();
        assert_eq!(st.size, 4096 * 3);
        assert_eq!(st.extents, 1);
        assert_eq!(st.ino, ino);
    }
}
