//! Named metric snapshots with one stable text and JSON rendering.
//!
//! Every reporter in the workspace — benches, examples, `repro --json` —
//! goes through [`MetricsSnapshot`], so what a bench prints and what the
//! machine-readable results file holds cannot drift apart. Renderings
//! are deterministic: metrics appear in insertion order and floats are
//! formatted with a fixed number of decimals.

use std::fmt::Write as _;

/// A metric's value: integral counters or fixed-point-rendered floats.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum MetricValue {
    /// An exact counter (events, bytes, virtual nanoseconds).
    Int(u64),
    /// A derived ratio or mean; rendered with three decimals.
    Float(f64),
}

/// One named, unit-annotated measurement.
#[derive(Clone, Debug)]
pub struct Metric {
    /// Metric name, e.g. `"crash_to_first_byte"`.
    pub name: String,
    /// Unit label, e.g. `"ns"`, `"bytes"`, `"count"`.
    pub unit: &'static str,
    /// The measured value.
    pub value: MetricValue,
}

/// A named collection of metrics from one scenario run.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// Scenario label, e.g. `"mechanisms/grant_copy"`.
    pub scenario: String,
    /// Metrics in insertion order (renderings preserve it).
    pub metrics: Vec<Metric>,
    /// Whether this snapshot's values are wall-clock-derived and thus
    /// nondeterministic. Marked rows carry `"wall":true` in the JSON
    /// rendering so determinism diffs (`scripts/verify.sh`) can strip
    /// them by the marker instead of by name patterns.
    pub wall: bool,
}

impl MetricsSnapshot {
    /// An empty snapshot for `scenario`.
    pub fn new(scenario: impl Into<String>) -> MetricsSnapshot {
        MetricsSnapshot {
            scenario: scenario.into(),
            metrics: Vec::new(),
            wall: false,
        }
    }

    /// Marks every row of this snapshot as wall-clock-derived (excluded
    /// from byte-determinism comparisons).
    pub fn mark_wall(&mut self) {
        self.wall = true;
    }

    /// Appends an integer-valued metric.
    pub fn push_int(&mut self, name: impl Into<String>, unit: &'static str, value: u64) {
        self.metrics.push(Metric {
            name: name.into(),
            unit,
            value: MetricValue::Int(value),
        });
    }

    /// Appends a float-valued metric.
    pub fn push_float(&mut self, name: impl Into<String>, unit: &'static str, value: f64) {
        self.metrics.push(Metric {
            name: name.into(),
            unit,
            value: MetricValue::Float(value),
        });
    }

    /// Looks up a metric by name.
    pub fn get(&self, name: &str) -> Option<&Metric> {
        self.metrics.iter().find(|m| m.name == name)
    }

    /// Renders the snapshot as an aligned text table.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "[{}]", self.scenario);
        let width = self.metrics.iter().map(|m| m.name.len()).max().unwrap_or(0);
        for m in &self.metrics {
            let _ = writeln!(
                out,
                "  {:width$}  {} {}",
                m.name,
                render_value(m.value),
                m.unit,
            );
        }
        out
    }
}

fn render_value(v: MetricValue) -> String {
    match v {
        MetricValue::Int(i) => i.to_string(),
        MetricValue::Float(f) => format!("{f:.3}"),
    }
}

/// Escapes `s` for inclusion in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders snapshots as the machine-readable results format: a JSON
/// array of `{"scenario", "metric", "unit", "value"}` rows. Rows from
/// wall-clock-marked snapshots carry an extra `"wall":true` key.
pub fn render_json(snapshots: &[MetricsSnapshot]) -> String {
    let mut out = String::from("[\n");
    let mut first = true;
    for snap in snapshots {
        let wall = if snap.wall { ",\"wall\":true" } else { "" };
        for m in &snap.metrics {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let _ = write!(
                out,
                "  {{\"scenario\":\"{}\",\"metric\":\"{}\",\"unit\":\"{}\",\"value\":{}{}}}",
                json_escape(&snap.scenario),
                json_escape(&m.name),
                json_escape(m.unit),
                render_value(m.value),
                wall,
            );
        }
    }
    out.push_str("\n]\n");
    out
}

/// Validates a `render_json`-shaped document: it must parse and every
/// row must carry the four required keys with a numeric value.
pub fn validate_json(doc: &str) -> Result<usize, String> {
    let value = crate::json::parse(doc)?;
    let rows = value.as_array().ok_or("results root must be an array")?;
    for (i, row) in rows.iter().enumerate() {
        for key in ["scenario", "metric", "unit"] {
            row.get(key)
                .and_then(|v| v.as_str())
                .ok_or_else(|| format!("row {i}: missing string key {key:?}"))?;
        }
        row.get("value")
            .and_then(|v| v.as_f64())
            .ok_or_else(|| format!("row {i}: missing numeric key \"value\""))?;
    }
    Ok(rows.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetricsSnapshot {
        let mut s = MetricsSnapshot::new("mechanisms/grant_copy");
        s.push_int("batched_cost", "ns", 41_804);
        s.push_int("hypercalls_saved", "count", 31);
        s.push_float("bytes_per_hypercall", "bytes", 48_448.0);
        s
    }

    #[test]
    fn text_rendering_is_stable() {
        // Golden rendering: any change here is a deliberate format break.
        let expected = "\
[mechanisms/grant_copy]
  batched_cost         41804 ns
  hypercalls_saved     31 count
  bytes_per_hypercall  48448.000 bytes
";
        assert_eq!(sample().render_text(), expected);
    }

    #[test]
    fn json_rendering_is_stable_and_validates() {
        let expected = "\
[
  {\"scenario\":\"mechanisms/grant_copy\",\"metric\":\"batched_cost\",\"unit\":\"ns\",\"value\":41804},
  {\"scenario\":\"mechanisms/grant_copy\",\"metric\":\"hypercalls_saved\",\"unit\":\"count\",\"value\":31},
  {\"scenario\":\"mechanisms/grant_copy\",\"metric\":\"bytes_per_hypercall\",\"unit\":\"bytes\",\"value\":48448.000}
]
";
        let doc = render_json(&[sample()]);
        assert_eq!(doc, expected);
        assert_eq!(validate_json(&doc), Ok(3));
    }

    #[test]
    fn wall_marker_tags_every_row() {
        let mut s = sample();
        s.mark_wall();
        let doc = render_json(&[s]);
        assert_eq!(doc.matches("\"wall\":true").count(), 3);
        // Marked rows still validate: the marker is additive.
        assert_eq!(validate_json(&doc), Ok(3));
        // Unmarked snapshots never carry the key (golden test above
        // pins the exact bytes).
        assert!(!render_json(&[sample()]).contains("wall"));
    }

    #[test]
    fn validation_rejects_malformed_rows() {
        assert!(validate_json("{\"not\":\"an array\"}").is_err());
        assert!(validate_json("[{\"scenario\":\"s\",\"metric\":\"m\",\"unit\":\"u\"}]").is_err());
        assert!(validate_json("[").is_err());
    }

    #[test]
    fn escaping_covers_quotes_and_control_chars() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
