//! **kite-trace** — deterministic observability for the simulated stack.
//!
//! Three pieces, layered:
//!
//! * [`tracer`] — a bounded ring of typed [`TraceEvent`]s stamped with
//!   virtual time, plus the [`TraceQuery`] assertion API. Disabled by
//!   default; the disabled emit path is a single branch and runs no
//!   allocation.
//! * [`reqtrace`] — [`ReqTracer`], per-request stage stamps: a
//!   deterministic 1-in-N sample of requests carries a [`ReqId`]
//!   through ring slots and device queues, producing latency
//!   waterfalls, per-stage histograms and Perfetto flow arrows.
//! * [`metrics`] — [`MetricsSnapshot`], the one rendering (text + JSON)
//!   every bench and example reports through.
//! * [`sampler`] — [`TimeSeriesSampler`], a bounded virtual-time metrics
//!   time series (counter deltas + gauges) with deterministic CSV/JSON
//!   export.
//! * [`chrome`] — a Chrome-trace/Perfetto JSON exporter (one track per
//!   domain, virtual-time microseconds) and its validator, backed by the
//!   dependency-free parser in [`json`].
//!
//! Determinism rules: events are stamped with virtual time only (no wall
//! clock), sequence ids start at zero per tracer, and all renderings use
//! fixed-point formatting — two runs with the same seed produce
//! byte-identical trace and metrics output.

pub mod chrome;
pub mod json;
pub mod metrics;
pub mod reqtrace;
pub mod sampler;
pub mod tracer;

pub use json::JsonValue;
pub use metrics::{Metric, MetricValue, MetricsSnapshot};
pub use reqtrace::{
    ReqId, ReqRecord, ReqTracer, SlotClass, Stage, StageStamp, DEFAULT_REQ_CAPACITY,
};
pub use sampler::{Sample, SampleKind, TimeSeriesSampler};
pub use tracer::{EventKind, NotifyOutcome, TraceEvent, TraceQuery, Tracer, DEFAULT_CAPACITY};
