//! Virtual-time-driven metrics time-series sampler.
//!
//! A [`TimeSeriesSampler`] snapshots a fixed set of columns every N
//! virtual nanoseconds into a bounded ring. Counter columns record the
//! delta since the previous sample (per-interval rates); gauge columns
//! record the raw value. Because samples are stamped with virtual time
//! and fed from virtual-time counters only, two same-seed runs export
//! byte-identical CSV/JSON — the determinism quarantine of DESIGN.md
//! §14 applies to the wall-clock profiler, not to this sampler.
//!
//! The ring is bounded: once `capacity` samples are held, recording a
//! new one evicts the oldest (drop-oldest) and bumps [`TimeSeriesSampler::evicted`]
//! (`TimeSeriesSampler::evicted`), so week-long fleet runs cannot grow
//! memory without bound.

use kite_sim::Nanos;
use std::collections::VecDeque;

/// How a column's raw input turns into the recorded value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleKind {
    /// Monotonic counter: the sample records the delta since the last
    /// sample (first sample records the delta from zero).
    Counter,
    /// Instantaneous value: recorded as-is.
    Gauge,
}

#[derive(Debug, Clone)]
struct Column {
    name: String,
    kind: SampleKind,
    /// Last raw value seen, for counter deltas.
    prev: u64,
}

/// One recorded sample row: virtual timestamp plus one value per column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sample {
    pub at: Nanos,
    pub values: Vec<u64>,
}

/// Bounded, deterministic metrics time series. See the module docs.
#[derive(Debug, Clone)]
pub struct TimeSeriesSampler {
    interval: Nanos,
    capacity: usize,
    columns: Vec<Column>,
    ring: VecDeque<Sample>,
    evicted: u64,
}

impl TimeSeriesSampler {
    /// A sampler that expects a sample every `interval` of virtual time
    /// and keeps at most `capacity` samples (oldest evicted first).
    /// `capacity` is clamped to at least 1.
    pub fn new(interval: Nanos, capacity: usize) -> Self {
        TimeSeriesSampler {
            interval,
            capacity: capacity.max(1),
            columns: Vec::new(),
            ring: VecDeque::new(),
            evicted: 0,
        }
    }

    /// Append a column. Builder-style; call once per column before the
    /// first [`record`](Self::record).
    #[must_use]
    pub fn with_column(mut self, name: &str, kind: SampleKind) -> Self {
        assert!(
            self.ring.is_empty(),
            "columns must be declared before the first sample"
        );
        self.columns.push(Column {
            name: name.to_string(),
            kind,
            prev: 0,
        });
        self
    }

    /// The sampling interval this series was configured with.
    pub fn interval(&self) -> Nanos {
        self.interval
    }

    /// Column names, in declaration order.
    pub fn column_names(&self) -> Vec<&str> {
        self.columns.iter().map(|c| c.name.as_str()).collect()
    }

    /// Record one sample at virtual time `at`. `raw` must supply one
    /// value per declared column, in declaration order.
    pub fn record(&mut self, at: Nanos, raw: &[u64]) {
        assert_eq!(
            raw.len(),
            self.columns.len(),
            "sample width must match declared columns"
        );
        let values = self
            .columns
            .iter_mut()
            .zip(raw)
            .map(|(col, &v)| match col.kind {
                SampleKind::Counter => {
                    let delta = v.wrapping_sub(col.prev);
                    col.prev = v;
                    delta
                }
                SampleKind::Gauge => v,
            })
            .collect();
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.evicted += 1;
        }
        self.ring.push_back(Sample { at, values });
    }

    /// Number of samples currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when no samples have been recorded (or all were evicted and
    /// none re-recorded — impossible with drop-oldest, kept for API
    /// completeness).
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Samples evicted from the ring so far.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Iterate over held samples, oldest first.
    pub fn samples(&self) -> impl Iterator<Item = &Sample> {
        self.ring.iter()
    }

    /// Render the series as CSV: a `t_ns` column plus one column per
    /// declared name. Deterministic: integer values, declaration order,
    /// `\n` line endings.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("t_ns");
        for c in &self.columns {
            out.push(',');
            out.push_str(&c.name);
        }
        out.push('\n');
        for s in &self.ring {
            out.push_str(&s.at.as_nanos().to_string());
            for v in &s.values {
                out.push(',');
                out.push_str(&v.to_string());
            }
            out.push('\n');
        }
        out
    }

    /// Render the series as JSON:
    /// `{"interval_ns":..,"evicted":..,"columns":[..],"samples":[{"t_ns":..,"v":[..]},..]}`.
    /// Deterministic for the same recorded samples.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"interval_ns\":{},\"evicted\":{},\"columns\":[",
            self.interval.as_nanos(),
            self.evicted
        ));
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\"", c.name));
        }
        out.push_str("],\"samples\":[");
        for (i, s) in self.ring.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"t_ns\":{},\"v\":[", s.at.as_nanos()));
            for (j, v) in s.values.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&v.to_string());
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk() -> TimeSeriesSampler {
        TimeSeriesSampler::new(Nanos::from_millis(1), 4)
            .with_column("bytes", SampleKind::Counter)
            .with_column("depth", SampleKind::Gauge)
    }

    #[test]
    fn counters_record_deltas_gauges_record_raw() {
        let mut s = mk();
        s.record(Nanos::from_millis(1), &[100, 7]);
        s.record(Nanos::from_millis(2), &[250, 3]);
        let rows: Vec<_> = s.samples().collect();
        assert_eq!(rows[0].values, vec![100, 7]);
        assert_eq!(rows[1].values, vec![150, 3]);
    }

    #[test]
    fn ring_is_bounded_drop_oldest() {
        let mut s = mk();
        for i in 1..=10u64 {
            s.record(Nanos::from_millis(i), &[i * 10, i]);
        }
        assert_eq!(s.len(), 4);
        assert_eq!(s.evicted(), 6);
        let first = s.samples().next().unwrap();
        assert_eq!(first.at, Nanos::from_millis(7));
        // Counter deltas survive eviction: prev tracks the raw value.
        assert_eq!(first.values, vec![10, 7]);
    }

    #[test]
    fn csv_and_json_are_stable() {
        let mut s = mk();
        s.record(Nanos::from_millis(1), &[100, 7]);
        s.record(Nanos::from_millis(2), &[250, 3]);
        assert_eq!(
            s.to_csv(),
            "t_ns,bytes,depth\n1000000,100,7\n2000000,150,3\n"
        );
        assert_eq!(
            s.to_json(),
            "{\"interval_ns\":1000000,\"evicted\":0,\"columns\":[\"bytes\",\"depth\"],\
             \"samples\":[{\"t_ns\":1000000,\"v\":[100,7]},{\"t_ns\":2000000,\"v\":[150,3]}]}"
        );
    }

    #[test]
    fn json_parses_with_the_local_parser() {
        let mut s = mk();
        s.record(Nanos::from_millis(1), &[1, 2]);
        let parsed = crate::json::parse(&s.to_json()).expect("sampler JSON must parse");
        assert!(parsed.get("samples").is_some());
        assert!(parsed.get("columns").is_some());
    }

    #[test]
    #[should_panic(expected = "sample width")]
    fn wrong_width_panics() {
        let mut s = mk();
        s.record(Nanos::from_millis(1), &[1]);
    }
}
