//! Chrome-trace (Perfetto-compatible) JSON export.
//!
//! The exporter writes the [JSON object format]: a `traceEvents` array
//! plus a top-level `droppedEvents` count. Each simulated domain gets
//! one track (pid 0, tid = domain id, named via `"M"` thread-name
//! metadata); cost-bearing events render as complete `"X"` slices with
//! a duration, everything else as instant `"i"` events. Timestamps are
//! virtual-time microseconds with nanosecond precision, printed as
//! fixed-point decimals so output is byte-stable across runs.
//!
//! When a [`ReqTracer`] is supplied ([`export_with_flows`]), every
//! completed sampled request additionally draws a Perfetto *flow* — a
//! begin/step/end chain of `"s"`/`"t"`/`"f"` events keyed by the
//! request id — whose points land on the domain (or per-queue) track
//! of each stage crossing, so the viewer renders an arrow following
//! the request across the stack.
//!
//! [JSON object format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
use std::fmt::Write as _;

use kite_sim::Nanos;

use crate::metrics::json_escape;
use crate::reqtrace::ReqTracer;
use crate::tracer::{EventKind, Tracer};

/// Virtual nanoseconds as Chrome-trace microseconds: `"{us}.{ns:03}"`.
fn ts(at: Nanos) -> String {
    format!("{}.{:03}", at.as_nanos() / 1_000, at.as_nanos() % 1_000)
}

#[allow(clippy::too_many_arguments)]
fn push_event(
    out: &mut String,
    first: &mut bool,
    name: &str,
    tid: u32,
    at: Nanos,
    dur: Option<Nanos>,
    args: &[(&str, String)],
) {
    if !*first {
        out.push(',');
    }
    *first = false;
    let _ = write!(
        out,
        "\n  {{\"name\":\"{}\",\"cat\":\"kite\",\"pid\":0,\"tid\":{},\"ts\":{}",
        json_escape(name),
        tid,
        ts(at),
    );
    match dur {
        Some(d) => {
            let _ = write!(out, ",\"ph\":\"X\",\"dur\":{}", ts(d));
        }
        None => out.push_str(",\"ph\":\"i\",\"s\":\"t\""),
    }
    out.push_str(",\"args\":{");
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{}", json_escape(k), v);
    }
    out.push_str("}}");
}

fn str_arg(s: &str) -> String {
    format!("\"{}\"", json_escape(s))
}

/// Base of the synthetic tid range for per-queue tracks, far above any
/// real domain id so queue tracks never collide with domain tracks.
const QUEUE_TID_BASE: u32 = 0x10000;

/// Queues per domain the synthetic tid space reserves.
const QUEUE_TID_STRIDE: u32 = 64;

/// The synthetic track id of queue `qid` of domain `dom`.
fn queue_tid(dom: u16, qid: u16) -> u32 {
    QUEUE_TID_BASE + dom as u32 * QUEUE_TID_STRIDE + (qid as u32 % QUEUE_TID_STRIDE)
}

/// Renders the tracer's events as a Chrome-trace JSON document.
///
/// `tracks` names the per-domain tracks as `(domain id, name)` pairs —
/// callers pass every domain ever created (including dead ones) so a
/// crashed driver domain's track stays labelled in the viewer.
///
/// Multi-queue ring drains ([`EventKind::RingDrain`] with a queue index)
/// render on a synthetic per-queue track named `<domain>/q<k>`, one per
/// `(domain, queue)` pair seen in the trace, so Perfetto shows each
/// queue's drain cadence as its own row. Single-queue drains (`qid:
/// None`) stay on the domain track, byte-identical to the legacy layout.
pub fn export(tracer: &Tracer, tracks: &[(u16, String)]) -> String {
    export_with_flows(tracer, tracks, None)
}

/// [`export`], plus one Perfetto flow per completed sampled request.
///
/// Each [`ReqRecord`](crate::reqtrace::ReqRecord) with at least two
/// stamps renders as a `"s"` event at its first stamp, `"t"` steps at
/// the intermediate stamps and a `"f"` (binding `"bp":"e"`) at the
/// last, all sharing the request id as the flow `"id"` and named
/// `"req"` — Perfetto draws the arrow across the tracks the stamps
/// land on. Passing `None` reproduces [`export`] byte-for-byte.
pub fn export_with_flows(
    tracer: &Tracer,
    tracks: &[(u16, String)],
    req: Option<&ReqTracer>,
) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    for &(tid, ref name) in tracks {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "\n  {{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{},\"args\":{{\"name\":{}}}}}",
            tid,
            str_arg(&format!("{name} (dom {tid})")),
        );
    }
    // Per-queue tracks: pre-scan for (dom, qid) pairs so the metadata
    // block is complete and deterministically ordered.
    let mut queue_tracks: std::collections::BTreeSet<(u16, u16)> = Default::default();
    for e in tracer.events() {
        if let EventKind::RingDrain { qid: Some(q), .. } = e.kind {
            queue_tracks.insert((e.dom, q));
        }
    }
    // Flow points can land on per-queue tracks no drain touched; name
    // those too so the viewer never shows a bare tid.
    if let Some(rt) = req {
        for rec in rt.completed() {
            for s in &rec.stamps {
                if let Some(q) = s.qid {
                    queue_tracks.insert((s.dom, q));
                }
            }
        }
    }
    for &(dom, q) in &queue_tracks {
        let base = tracks
            .iter()
            .find(|&&(tid, _)| tid == dom)
            .map(|(_, name)| name.as_str())
            .unwrap_or("domain");
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "\n  {{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{},\"args\":{{\"name\":{}}}}}",
            queue_tid(dom, q),
            str_arg(&format!("{base}/q{q} (dom {dom})")),
        );
    }
    for e in tracer.events() {
        match &e.kind {
            EventKind::Hypercall { op, bytes, cost } => push_event(
                &mut out,
                &mut first,
                op,
                e.dom.into(),
                e.at,
                Some(*cost),
                &[("bytes", bytes.to_string())],
            ),
            EventKind::GrantCopyBatch {
                ops,
                ok_ops,
                bytes,
                cost,
            } => push_event(
                &mut out,
                &mut first,
                "gnttab_copy",
                e.dom.into(),
                e.at,
                Some(*cost),
                &[
                    ("ops", ops.to_string()),
                    ("ok_ops", ok_ops.to_string()),
                    ("bytes", bytes.to_string()),
                ],
            ),
            EventKind::Notify {
                to_dom,
                port,
                outcome,
                cost,
            } => push_event(
                &mut out,
                &mut first,
                "notify",
                e.dom.into(),
                e.at,
                Some(*cost),
                &[
                    ("to_dom", to_dom.to_string()),
                    ("port", port.to_string()),
                    ("outcome", str_arg(outcome.name())),
                ],
            ),
            EventKind::NotifyDelayed { extra } => push_event(
                &mut out,
                &mut first,
                "notify_delayed",
                e.dom.into(),
                e.at,
                None,
                &[("extra_ns", extra.as_nanos().to_string())],
            ),
            EventKind::XenbusState { path, state } => push_event(
                &mut out,
                &mut first,
                &format!("xenbus:{state}"),
                e.dom.into(),
                e.at,
                None,
                &[("path", str_arg(path))],
            ),
            EventKind::Lifecycle { device, transition } => push_event(
                &mut out,
                &mut first,
                &format!("lifecycle:{transition}"),
                e.dom.into(),
                e.at,
                None,
                &[("device", str_arg(device))],
            ),
            EventKind::RingDrain {
                queue,
                qid,
                consumed,
                delivered,
                notify,
            } => {
                let tid = match qid {
                    Some(q) => queue_tid(e.dom, *q),
                    None => e.dom.into(),
                };
                push_event(
                    &mut out,
                    &mut first,
                    queue,
                    tid,
                    e.at,
                    None,
                    &[
                        ("consumed", consumed.to_string()),
                        ("delivered", delivered.to_string()),
                        ("notify", notify.to_string()),
                    ],
                )
            }
            EventKind::Milestone { what } => {
                push_event(&mut out, &mut first, what, e.dom.into(), e.at, None, &[])
            }
            EventKind::HealthTransition {
                watched,
                state,
                cause,
                missed,
            } => push_event(
                &mut out,
                &mut first,
                &format!("health:{state}"),
                e.dom.into(),
                e.at,
                None,
                &[
                    ("watched", watched.to_string()),
                    ("cause", str_arg(cause)),
                    ("missed", missed.to_string()),
                ],
            ),
        }
    }
    // Flow arrows, one per completed sampled request, appended after
    // the slice/instant events (Perfetto orders by ts, not position).
    if let Some(rt) = req {
        for rec in rt.completed() {
            if rec.stamps.len() < 2 {
                continue;
            }
            let last = rec.stamps.len() - 1;
            for (i, s) in rec.stamps.iter().enumerate() {
                let ph = if i == 0 {
                    "s"
                } else if i == last {
                    "f"
                } else {
                    "t"
                };
                let tid = match s.qid {
                    Some(q) => queue_tid(s.dom, q),
                    None => s.dom.into(),
                };
                if !first {
                    out.push(',');
                }
                first = false;
                let _ = write!(
                    out,
                    "\n  {{\"name\":\"req\",\"cat\":\"kite\",\"ph\":\"{}\",\"pid\":0,\"tid\":{},\"ts\":{},\"id\":{}{},\"args\":{{\"stage\":{}}}}}",
                    ph,
                    tid,
                    ts(s.at),
                    rec.id,
                    if ph == "f" { ",\"bp\":\"e\"" } else { "" },
                    str_arg(s.stage.name()),
                );
            }
        }
    }
    let _ = write!(
        out,
        "\n],\"displayTimeUnit\":\"ns\",\"droppedEvents\":{}}}\n",
        tracer.dropped()
    );
    out
}

/// Validates a Chrome-trace document produced by [`export`] or
/// [`export_with_flows`]: it must parse as JSON, every event needs
/// `pid`/`tid`/`ph` (and `ts` unless metadata), timestamps must be
/// monotonic non-decreasing per track, and `droppedEvents` must be
/// zero. Flow events (`"s"`/`"t"`/`"f"`) are exempt from the per-track
/// ordering (the exporter appends them after the slice events, and a
/// flow legitimately revisits a track); instead each flow `"id"` must
/// carry exactly one begin and one end with non-decreasing timestamps
/// in between. Returns the number of non-metadata events.
pub fn validate(doc: &str) -> Result<usize, String> {
    let value = crate::json::parse(doc)?;
    let events = value
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .ok_or("missing traceEvents array")?;
    let dropped = value
        .get("droppedEvents")
        .and_then(|v| v.as_f64())
        .ok_or("missing droppedEvents count")?;
    if dropped != 0.0 {
        return Err(format!("{dropped} events were dropped from the ring"));
    }
    let mut last_ts: std::collections::HashMap<u64, f64> = std::collections::HashMap::new();
    // id -> (begin count, end count, last ts seen on the flow)
    let mut flows: std::collections::HashMap<u64, (u32, u32, f64)> =
        std::collections::HashMap::new();
    let mut counted = 0usize;
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        let tid = ev
            .get("tid")
            .and_then(|v| v.as_f64())
            .ok_or_else(|| format!("event {i}: missing tid"))?;
        ev.get("pid")
            .and_then(|v| v.as_f64())
            .ok_or_else(|| format!("event {i}: missing pid"))?;
        if ph == "M" {
            continue;
        }
        counted += 1;
        let ts = ev
            .get("ts")
            .and_then(|v| v.as_f64())
            .ok_or_else(|| format!("event {i}: missing ts"))?;
        if matches!(ph, "s" | "t" | "f") {
            let id = ev
                .get("id")
                .and_then(|v| v.as_f64())
                .ok_or_else(|| format!("event {i}: flow event missing id"))?;
            let fl = flows
                .entry(id.to_bits())
                .or_insert((0, 0, f64::NEG_INFINITY));
            if ts < fl.2 {
                return Err(format!(
                    "event {i}: flow {id} ts {ts} precedes {} — not monotonic",
                    fl.2
                ));
            }
            fl.2 = ts;
            match ph {
                "s" => fl.0 += 1,
                "f" => fl.1 += 1,
                _ => {}
            }
            continue;
        }
        let prev = last_ts.entry(tid.to_bits()).or_insert(f64::NEG_INFINITY);
        if ts < *prev {
            return Err(format!(
                "event {i}: ts {ts} precedes {prev} on track {tid} — not monotonic"
            ));
        }
        *prev = ts;
    }
    for (id, (begins, ends, _)) in &flows {
        if *begins != 1 || *ends != 1 {
            return Err(format!(
                "flow {}: {begins} begin / {ends} end events — must pair exactly",
                f64::from_bits(*id)
            ));
        }
    }
    Ok(counted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::NotifyOutcome;

    fn sample_tracer() -> Tracer {
        let mut t = Tracer::enabled(64);
        t.set_now(Nanos::from_micros(3));
        t.emit_with(2, || EventKind::GrantCopyBatch {
            ops: 20,
            ok_ops: 20,
            bytes: 20 * kite_net::ether::ETH_FRAME_MAX as u64,
            cost: Nanos::from_nanos(4_500),
        });
        t.emit_with(2, || EventKind::Notify {
            to_dom: 3,
            port: 4,
            outcome: NotifyOutcome::Delivered,
            cost: Nanos::from_nanos(700),
        });
        t.set_now(Nanos::from_micros(9));
        t.emit_with(0, || EventKind::XenbusState {
            path: "/local/domain/2/backend/vif/3/0/state".into(),
            state: "closed",
        });
        t.emit_with(3, || EventKind::Milestone { what: "first_byte" });
        t
    }

    fn tracks() -> Vec<(u16, String)> {
        vec![
            (0, "Domain-0".into()),
            (2, "netbackend".into()),
            (3, "guest".into()),
        ]
    }

    #[test]
    fn export_validates_and_counts_events() {
        let t = sample_tracer();
        let doc = export(&t, &tracks());
        assert_eq!(validate(&doc), Ok(4));
        // Virtual microsecond fixed-point: 3 µs → "3.000".
        assert!(doc.contains("\"ts\":3.000"), "{doc}");
        assert!(doc.contains("\"dur\":4.500"), "{doc}");
        assert!(doc.contains("netbackend (dom 2)"), "{doc}");
    }

    #[test]
    fn export_is_byte_identical_for_identical_traces() {
        let a = export(&sample_tracer(), &tracks());
        let b = export(&sample_tracer(), &tracks());
        assert_eq!(a, b);
    }

    #[test]
    fn multi_queue_drains_get_their_own_tracks() {
        let mut t = Tracer::enabled(64);
        t.set_now(Nanos::from_micros(2));
        for q in 0..2u16 {
            t.emit_with(2, || EventKind::RingDrain {
                queue: "netback_tx",
                qid: Some(q),
                consumed: 8,
                delivered: 8,
                notify: true,
            });
        }
        t.emit_with(2, || EventKind::RingDrain {
            queue: "netback_rx",
            qid: None,
            consumed: 1,
            delivered: 1,
            notify: false,
        });
        let doc = export(&t, &[(2, "netbackend".into())]);
        assert_eq!(validate(&doc), Ok(3));
        // Each queue gets a named synthetic track; the qid-less drain
        // stays on the domain track.
        assert!(doc.contains("netbackend/q0 (dom 2)"), "{doc}");
        assert!(doc.contains("netbackend/q1 (dom 2)"), "{doc}");
        let q0 = queue_tid(2, 0);
        let q1 = queue_tid(2, 1);
        assert!(doc.contains(&format!("\"tid\":{q0},")), "{doc}");
        assert!(doc.contains(&format!("\"tid\":{q1},")), "{doc}");
        assert_ne!(q0, q1);
    }

    #[test]
    fn validate_flags_non_monotonic_tracks_and_drops() {
        let mut t = Tracer::enabled(64);
        t.set_now(Nanos::from_micros(5));
        t.emit_with(1, || EventKind::Milestone { what: "late" });
        t.set_now(Nanos::from_micros(1));
        t.emit_with(1, || EventKind::Milestone { what: "early" });
        let doc = export(&t, &[]);
        assert!(validate(&doc).unwrap_err().contains("not monotonic"));

        let mut t = Tracer::enabled(1);
        t.emit_with(0, || EventKind::Milestone { what: "a" });
        t.emit_with(0, || EventKind::Milestone { what: "b" });
        let doc = export(&t, &[]);
        assert!(validate(&doc).unwrap_err().contains("dropped"));
    }

    fn sample_reqtracer() -> ReqTracer {
        use crate::reqtrace::Stage;
        let mut rt = ReqTracer::enabled(1, 16);
        rt.set_now(Nanos::from_micros(1));
        let req = rt.admit(0).expect("sampled");
        rt.set_now(Nanos::from_micros(4));
        rt.stamp(req, Stage::RingSubmit, 3, None);
        rt.set_now(Nanos::from_micros(6));
        rt.stamp(req, Stage::BackendFetch, 2, Some(1));
        rt.set_now(Nanos::from_micros(9));
        rt.finish(req, 0);
        rt
    }

    #[test]
    fn flow_export_validates_and_pairs() {
        let t = sample_tracer();
        let rt = sample_reqtracer();
        let doc = export_with_flows(&t, &tracks(), Some(&rt));
        // 4 tracer events + 4 flow points (s, 2×t, f).
        assert_eq!(validate(&doc), Ok(8));
        assert!(doc.contains("\"ph\":\"s\""), "{doc}");
        assert!(doc.contains("\"ph\":\"f\",\"pid\":0"), "{doc}");
        assert!(doc.contains("\"bp\":\"e\""), "{doc}");
        assert!(doc.contains("\"stage\":\"ring_submit\""), "{doc}");
        // The Some-qid stamp lands on its queue track, which gets named.
        let qt = queue_tid(2, 1);
        assert!(doc.contains(&format!("\"tid\":{qt},")), "{doc}");
        assert!(doc.contains("netbackend/q1 (dom 2)"), "{doc}");
    }

    #[test]
    fn flow_export_without_requests_matches_legacy_export() {
        let t = sample_tracer();
        let legacy = export(&t, &tracks());
        assert_eq!(legacy, export_with_flows(&t, &tracks(), None));
        // An enabled tracer with no completed requests adds nothing.
        let rt = ReqTracer::enabled(1, 16);
        assert_eq!(legacy, export_with_flows(&t, &tracks(), Some(&rt)));
    }

    #[test]
    fn flow_export_is_byte_identical_for_identical_inputs() {
        let a = export_with_flows(&sample_tracer(), &tracks(), Some(&sample_reqtracer()));
        let b = export_with_flows(&sample_tracer(), &tracks(), Some(&sample_reqtracer()));
        assert_eq!(a, b);
    }

    #[test]
    fn validate_flags_unpaired_and_reordered_flows() {
        // A begin with no end.
        let doc = r#"{"traceEvents":[
  {"name":"req","cat":"kite","ph":"s","pid":0,"tid":1,"ts":1.000,"id":7,"args":{}}
],"displayTimeUnit":"ns","droppedEvents":0}"#;
        assert!(validate(doc).unwrap_err().contains("must pair"));
        // A flow whose steps go backwards in time.
        let doc = r#"{"traceEvents":[
  {"name":"req","cat":"kite","ph":"s","pid":0,"tid":1,"ts":5.000,"id":7,"args":{}},
  {"name":"req","cat":"kite","ph":"f","bp":"e","pid":0,"tid":1,"ts":1.000,"id":7,"args":{}}
],"displayTimeUnit":"ns","droppedEvents":0}"#;
        assert!(validate(doc).unwrap_err().contains("not monotonic"));
    }
}
