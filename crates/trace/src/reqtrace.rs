//! Per-request end-to-end tracing: virtual-time latency waterfalls.
//!
//! A [`ReqTracer`] mints a deterministic sampled [`ReqId`] at injection
//! (1-in-N counting, no RNG, no wall clock) and collects a
//! [`StageStamp`] at every stage boundary the request crosses —
//! frontend ring submit, backend fetch, grant copy, NVMe SQ/CQ, IRQ
//! delivery — until [`finish`](ReqTracer::finish) closes the record.
//! Closed records land in a bounded drop-oldest store (completion
//! order, so exports are deterministic) and feed per-stage, per-domain
//! and end-to-end [`Histogram`]s.
//!
//! Stage durations telescope: each inter-stamp gap is attributed to the
//! *later* stamp's stage, so the per-request stage durations always sum
//! to the end-to-end latency exactly — the waterfall has no gaps and no
//! double counting.
//!
//! Like [`Tracer`](crate::Tracer), a disabled `ReqTracer` costs one
//! branch per call and never allocates; domain ids are carried as raw
//! `u16` because this crate sits below `kite-xen`.

use std::collections::{BTreeMap, HashMap, VecDeque};

use kite_sim::{Histogram, Nanos};

/// Identity of one sampled request, threaded through ring slots and
/// device queues. Ids are minted sequentially from 0 per tracer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ReqId(pub u64);

/// A stage boundary on a request's path through the stack.
///
/// The network echo path visits `Inject → NicRx → RxDeliver →
/// RingSubmit → BackendFetch → GrantCopy → NicTx → Complete`; the
/// storage path visits `Inject → RingSubmit → BackendFetch →
/// [GrantCopy] → NvmeSubmit → NvmeComplete → IrqDeliver → Complete`.
/// Stamping is first-touch: a repeated stage is ignored, so for a
/// logical I/O split into chunks the first chunk's journey defines the
/// intermediate stamps.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Stage {
    /// The workload injected the request (client ping sent, logical
    /// I/O submitted).
    Inject,
    /// The frame arrived at the driver domain's physical NIC.
    NicRx,
    /// The guest stack saw the inbound request (echo server wake).
    RxDeliver,
    /// The frontend placed the request in a shared ring slot.
    RingSubmit,
    /// The backend's drain thread consumed the ring slot.
    BackendFetch,
    /// The grant-copy batch carrying the payload completed.
    GrantCopy,
    /// The NVMe command entered the submission queue.
    NvmeSubmit,
    /// The NVMe completion-queue entry was reaped.
    NvmeComplete,
    /// The driver domain handed the frame to the physical NIC.
    NicTx,
    /// The completion interrupt reached the frontend's handler.
    IrqDeliver,
    /// The workload observed the response.
    Complete,
}

impl Stage {
    /// Number of stages.
    pub const COUNT: usize = 11;

    /// Every stage, in path order.
    pub const ALL: [Stage; Stage::COUNT] = [
        Stage::Inject,
        Stage::NicRx,
        Stage::RxDeliver,
        Stage::RingSubmit,
        Stage::BackendFetch,
        Stage::GrantCopy,
        Stage::NvmeSubmit,
        Stage::NvmeComplete,
        Stage::NicTx,
        Stage::IrqDeliver,
        Stage::Complete,
    ];

    /// Stable lower-case label used in reports and flow events.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Inject => "inject",
            Stage::NicRx => "nic_rx",
            Stage::RxDeliver => "rx_deliver",
            Stage::RingSubmit => "ring_submit",
            Stage::BackendFetch => "backend_fetch",
            Stage::GrantCopy => "grant_copy",
            Stage::NvmeSubmit => "nvme_submit",
            Stage::NvmeComplete => "nvme_complete",
            Stage::NicTx => "nic_tx",
            Stage::IrqDeliver => "irq_deliver",
            Stage::Complete => "complete",
        }
    }

    fn idx(self) -> usize {
        self as usize
    }
}

/// Namespaces for the slot map that carries a [`ReqId`] across layers
/// that only share an opaque key (a ring-slot id, an ICMP sequence
/// number, an NVMe command id).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SlotClass {
    /// ICMP echo sequence number (unique per run).
    NetIcmp = 0,
    /// Netfront tx ring slot, keyed `(queue << 32) | slot id`.
    NetTx = 1,
    /// Blkfront ring request id (monotonic per run).
    BlkReq = 2,
    /// NVMe command id (never recycled per controller incarnation).
    NvmeCid = 3,
}

/// One recorded stage crossing.
#[derive(Clone, Copy, Debug)]
pub struct StageStamp {
    /// Which boundary was crossed.
    pub stage: Stage,
    /// Raw id of the domain the crossing is attributed to.
    pub dom: u16,
    /// Queue index for multi-queue stages; `None` on single-queue
    /// paths (mirrors the `RingDrain` convention, so flow events land
    /// on the same Perfetto track as the drains).
    pub qid: Option<u16>,
    /// Wire segments the request's frame resolved to at this stage
    /// (TSO fan-out at `NicTx`); zero for stages where segmentation is
    /// meaningless or frames that fit one segment.
    pub segs: u16,
    /// Virtual time of the crossing.
    pub at: Nanos,
}

/// The complete stamp trail of one sampled request.
#[derive(Clone, Debug)]
pub struct ReqRecord {
    /// The request's id.
    pub id: u64,
    /// Stamps; sorted by time once the record is finished.
    pub stamps: Vec<StageStamp>,
}

impl ReqRecord {
    /// End-to-end latency: last stamp minus first.
    pub fn e2e(&self) -> Nanos {
        match (self.stamps.first(), self.stamps.last()) {
            (Some(a), Some(b)) => b.at.saturating_sub(a.at),
            _ => Nanos::ZERO,
        }
    }

    /// The stamp for `stage`, if the request crossed it.
    pub fn stamp_of(&self, stage: Stage) -> Option<&StageStamp> {
        self.stamps.iter().find(|s| s.stage == stage)
    }
}

struct Inner {
    now: Nanos,
    sample_every: u64,
    tick: u64,
    next_id: u64,
    capacity: usize,
    dropped: u64,
    live: HashMap<u64, ReqRecord>,
    slots: HashMap<(SlotClass, u64), u64>,
    completed: VecDeque<ReqRecord>,
    stage_hist: Vec<Histogram>,
    dom_hist: BTreeMap<u16, Histogram>,
    e2e_hist: Histogram,
}

/// Default completed-record capacity used by convenience callers.
pub const DEFAULT_REQ_CAPACITY: usize = 1 << 12;

/// Bounded recorder of per-request stage trails.
#[derive(Default)]
pub struct ReqTracer {
    inner: Option<Box<Inner>>,
}

impl ReqTracer {
    /// A tracer that samples nothing; every call is one branch.
    pub fn disabled() -> ReqTracer {
        ReqTracer { inner: None }
    }

    /// A tracer sampling one request in `sample_every`, keeping up to
    /// `capacity` completed records (oldest dropped first).
    pub fn enabled(sample_every: u64, capacity: usize) -> ReqTracer {
        let mut t = ReqTracer::disabled();
        t.enable(sample_every, capacity);
        t
    }

    /// Switches sampling on (idempotent: an enabled tracer keeps its
    /// records, rate and capacity).
    pub fn enable(&mut self, sample_every: u64, capacity: usize) {
        if self.inner.is_none() {
            self.inner = Some(Box::new(Inner {
                now: Nanos::ZERO,
                sample_every: sample_every.max(1),
                tick: 0,
                next_id: 0,
                capacity: capacity.max(1),
                dropped: 0,
                live: HashMap::new(),
                slots: HashMap::new(),
                completed: VecDeque::new(),
                stage_hist: vec![Histogram::new(); Stage::COUNT],
                dom_hist: BTreeMap::new(),
                e2e_hist: Histogram::new(),
            }));
        }
    }

    /// Whether requests are being sampled.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Advances the clock used to stamp subsequent crossings. Called
    /// once per simulation event, like [`Tracer::set_now`].
    ///
    /// [`Tracer::set_now`]: crate::Tracer::set_now
    pub fn set_now(&mut self, now: Nanos) {
        if let Some(inner) = &mut self.inner {
            inner.now = now;
        }
    }

    /// The current virtual timestamp ([`Nanos::ZERO`] when disabled).
    pub fn now(&self) -> Nanos {
        self.inner.as_ref().map_or(Nanos::ZERO, |i| i.now)
    }

    /// Counts an injection and mints a [`ReqId`] for every
    /// `sample_every`-th one (the first injection is always sampled, so
    /// short runs still trace). The new record carries its
    /// [`Stage::Inject`] stamp at the current clock.
    pub fn admit(&mut self, dom: u16) -> Option<ReqId> {
        let inner = self.inner.as_mut()?;
        let tick = inner.tick;
        inner.tick += 1;
        if tick % inner.sample_every != 0 {
            return None;
        }
        let id = inner.next_id;
        inner.next_id += 1;
        let at = inner.now;
        inner.live.insert(
            id,
            ReqRecord {
                id,
                stamps: vec![StageStamp {
                    stage: Stage::Inject,
                    dom,
                    qid: None,
                    segs: 0,
                    at,
                }],
            },
        );
        Some(ReqId(id))
    }

    /// Records `req` crossing `stage` at the current clock.
    /// First-touch: a stage the request already carries is ignored.
    pub fn stamp(&mut self, req: ReqId, stage: Stage, dom: u16, qid: Option<u16>) {
        let Some(inner) = &mut self.inner else {
            return;
        };
        let at = inner.now;
        Self::stamp_inner(inner, req, stage, dom, qid, at);
    }

    /// Records a crossing at an explicit time (for stamps reconstructed
    /// after the fact, e.g. an NVMe submit time recovered at reap).
    pub fn stamp_at(&mut self, req: ReqId, stage: Stage, dom: u16, qid: Option<u16>, at: Nanos) {
        let Some(inner) = &mut self.inner else {
            return;
        };
        Self::stamp_inner(inner, req, stage, dom, qid, at);
    }

    fn stamp_inner(
        inner: &mut Inner,
        req: ReqId,
        stage: Stage,
        dom: u16,
        qid: Option<u16>,
        at: Nanos,
    ) {
        let Some(rec) = inner.live.get_mut(&req.0) else {
            return;
        };
        if rec.stamps.iter().any(|s| s.stage == stage) {
            return;
        }
        rec.stamps.push(StageStamp {
            stage,
            dom,
            qid,
            segs: 0,
            at,
        });
    }

    /// Annotates the stamp `req` already carries for `stage` with the
    /// wire-segment count its frame resolved to (TSO fan-out). A
    /// no-op when disabled, when the request is not live, or when the
    /// stage was never stamped.
    pub fn annotate_segs(&mut self, req: ReqId, stage: Stage, segs: u16) {
        let Some(inner) = &mut self.inner else {
            return;
        };
        let Some(rec) = inner.live.get_mut(&req.0) else {
            return;
        };
        if let Some(s) = rec.stamps.iter_mut().find(|s| s.stage == stage) {
            s.segs = segs;
        }
    }

    /// Associates an opaque layer-local key with `req` so a later layer
    /// can recover the id (ring slot → backend, command id → reap).
    pub fn map(&mut self, class: SlotClass, key: u64, req: ReqId) {
        if let Some(inner) = &mut self.inner {
            inner.slots.insert((class, key), req.0);
        }
    }

    /// The request mapped under `(class, key)`, if any (non-destructive).
    pub fn lookup(&self, class: SlotClass, key: u64) -> Option<ReqId> {
        self.inner
            .as_ref()
            .and_then(|i| i.slots.get(&(class, key)).copied().map(ReqId))
    }

    /// Removes and returns the mapping under `(class, key)`.
    pub fn take(&mut self, class: SlotClass, key: u64) -> Option<ReqId> {
        self.inner
            .as_mut()
            .and_then(|i| i.slots.remove(&(class, key)).map(ReqId))
    }

    /// Closes `req` at the current clock: stamps [`Stage::Complete`],
    /// sorts the trail, feeds the histograms and moves the record to
    /// the bounded completed store.
    pub fn finish(&mut self, req: ReqId, dom: u16) {
        let at = self.now();
        self.finish_at(req, dom, at);
    }

    /// Closes `req` at an explicit completion time.
    pub fn finish_at(&mut self, req: ReqId, dom: u16, at: Nanos) {
        let Some(inner) = &mut self.inner else {
            return;
        };
        let Some(mut rec) = inner.live.remove(&req.0) else {
            return;
        };
        if !rec.stamps.iter().any(|s| s.stage == Stage::Complete) {
            rec.stamps.push(StageStamp {
                stage: Stage::Complete,
                dom,
                qid: None,
                segs: 0,
                at,
            });
        }
        // Stable by-time sort: stamps recovered after the fact (explicit
        // `stamp_at`) slot into their true position; ties keep emission
        // order.
        rec.stamps.sort_by_key(|s| s.at);
        for i in 1..rec.stamps.len() {
            let d = rec.stamps[i].at.saturating_sub(rec.stamps[i - 1].at);
            inner.stage_hist[rec.stamps[i].stage.idx()].record(d);
            inner
                .dom_hist
                .entry(rec.stamps[i].dom)
                .or_default()
                .record(d);
        }
        inner.e2e_hist.record(rec.e2e());
        if inner.completed.len() == inner.capacity {
            inner.completed.pop_front();
            inner.dropped += 1;
        }
        inner.completed.push_back(rec);
    }

    /// Injections counted (sampled or not).
    pub fn seen(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.tick)
    }

    /// Requests sampled (ids minted).
    pub fn sampled(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.next_id)
    }

    /// Completed records dropped from the front of the store.
    pub fn dropped(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.dropped)
    }

    /// Sampled requests still in flight.
    pub fn live_len(&self) -> usize {
        self.inner.as_ref().map_or(0, |i| i.live.len())
    }

    /// Completed records held, oldest completion first.
    pub fn completed(&self) -> impl Iterator<Item = &ReqRecord> {
        self.inner.iter().flat_map(|i| i.completed.iter())
    }

    /// Number of completed records held.
    pub fn completed_len(&self) -> usize {
        self.inner.as_ref().map_or(0, |i| i.completed.len())
    }

    /// The latency histogram of `stage` (time from the preceding stamp),
    /// when enabled.
    pub fn stage_hist(&self, stage: Stage) -> Option<&Histogram> {
        self.inner.as_ref().map(|i| &i.stage_hist[stage.idx()])
    }

    /// Per-domain latency histogram: all inter-stamp time attributed to
    /// stamps of domain `dom`, if any landed there.
    pub fn dom_hist(&self, dom: u16) -> Option<&Histogram> {
        self.inner.as_ref().and_then(|i| i.dom_hist.get(&dom))
    }

    /// End-to-end latency histogram over completed requests.
    pub fn e2e_hist(&self) -> Option<&Histogram> {
        self.inner.as_ref().map(|i| &i.e2e_hist)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_is_inert() {
        let mut t = ReqTracer::disabled();
        t.set_now(Nanos::from_secs(1));
        assert!(t.admit(0).is_none());
        t.stamp(ReqId(0), Stage::RingSubmit, 1, None);
        t.map(SlotClass::NetTx, 7, ReqId(0));
        assert!(t.lookup(SlotClass::NetTx, 7).is_none());
        assert!(t.take(SlotClass::NetTx, 7).is_none());
        t.finish(ReqId(0), 0);
        assert!(!t.is_enabled());
        assert_eq!(t.seen(), 0);
        assert_eq!(t.completed_len(), 0);
        assert_eq!(t.now(), Nanos::ZERO);
    }

    #[test]
    fn sampling_is_one_in_n_starting_with_the_first() {
        let mut t = ReqTracer::enabled(4, 16);
        let minted: Vec<Option<ReqId>> = (0..9).map(|_| t.admit(3)).collect();
        let ids: Vec<u64> = minted.iter().flatten().map(|r| r.0).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        assert!(minted[0].is_some() && minted[4].is_some() && minted[8].is_some());
        assert_eq!(t.seen(), 9);
        assert_eq!(t.sampled(), 3);
    }

    #[test]
    fn stamps_are_first_touch_and_telescope_to_e2e() {
        let mut t = ReqTracer::enabled(1, 16);
        t.set_now(Nanos::from_micros(10));
        let req = t.admit(0).expect("sampled");
        t.set_now(Nanos::from_micros(14));
        t.stamp(req, Stage::RingSubmit, 3, None);
        t.stamp(req, Stage::RingSubmit, 9, None); // ignored: first touch
        t.set_now(Nanos::from_micros(20));
        t.stamp(req, Stage::BackendFetch, 2, Some(1));
        // A stamp recovered after the fact sorts into place.
        t.stamp_at(req, Stage::GrantCopy, 2, Some(1), Nanos::from_micros(22));
        t.set_now(Nanos::from_micros(30));
        t.finish(req, 0);
        let rec = t.completed().next().expect("one record");
        assert_eq!(rec.e2e(), Nanos::from_micros(20));
        let stages: Vec<Stage> = rec.stamps.iter().map(|s| s.stage).collect();
        assert_eq!(
            stages,
            vec![
                Stage::Inject,
                Stage::RingSubmit,
                Stage::BackendFetch,
                Stage::GrantCopy,
                Stage::Complete
            ]
        );
        assert_eq!(rec.stamp_of(Stage::RingSubmit).unwrap().dom, 3);
        // Stage durations sum exactly to the end-to-end latency.
        let sum: u64 = rec
            .stamps
            .windows(2)
            .map(|w| (w[1].at - w[0].at).as_nanos())
            .sum();
        assert_eq!(sum, rec.e2e().as_nanos());
        assert_eq!(t.stage_hist(Stage::RingSubmit).unwrap().count(), 1);
        assert_eq!(t.e2e_hist().unwrap().count(), 1);
        assert!(t.dom_hist(2).is_some());
        assert!(t.dom_hist(7).is_none());
    }

    #[test]
    fn segs_annotation_lands_on_the_named_stage_only() {
        let mut t = ReqTracer::enabled(1, 16);
        let req = t.admit(0).expect("sampled");
        t.stamp(req, Stage::NicTx, 2, Some(0));
        t.annotate_segs(req, Stage::NicTx, 42);
        t.annotate_segs(req, Stage::GrantCopy, 7); // never stamped: no-op
        t.annotate_segs(ReqId(99), Stage::NicTx, 3); // unknown: no-op
        t.finish(req, 0);
        let rec = t.completed().next().expect("one record");
        assert_eq!(rec.stamp_of(Stage::NicTx).unwrap().segs, 42);
        assert_eq!(rec.stamp_of(Stage::Inject).unwrap().segs, 0);
        assert!(rec.stamp_of(Stage::GrantCopy).is_none());

        let mut off = ReqTracer::disabled();
        off.annotate_segs(ReqId(0), Stage::NicTx, 1); // disabled: one branch
    }

    #[test]
    fn slot_map_round_trips_and_take_consumes() {
        let mut t = ReqTracer::enabled(1, 16);
        let req = t.admit(0).expect("sampled");
        t.map(SlotClass::NvmeCid, 42, req);
        assert_eq!(t.lookup(SlotClass::NvmeCid, 42), Some(req));
        // Same key, different class: distinct namespaces.
        assert!(t.lookup(SlotClass::BlkReq, 42).is_none());
        assert_eq!(t.take(SlotClass::NvmeCid, 42), Some(req));
        assert!(t.take(SlotClass::NvmeCid, 42).is_none());
    }

    #[test]
    fn completed_store_drops_oldest_and_counts() {
        let mut t = ReqTracer::enabled(1, 2);
        for i in 0..4u64 {
            t.set_now(Nanos::from_micros(i));
            let req = t.admit(0).expect("sampled");
            t.finish(req, 0);
        }
        assert_eq!(t.completed_len(), 2);
        assert_eq!(t.dropped(), 2);
        // Oldest survivor is the third request.
        assert_eq!(t.completed().next().unwrap().id, 2);
        // Histograms still count every finished request.
        assert_eq!(t.e2e_hist().unwrap().count(), 4);
    }

    #[test]
    fn enable_is_idempotent() {
        let mut t = ReqTracer::enabled(2, 8);
        assert!(t.admit(0).is_some());
        t.enable(100, 1);
        assert!(t.admit(0).is_none(), "original rate of 2 still in force");
        assert!(t.admit(0).is_some());
    }

    #[test]
    fn finish_of_unknown_request_is_ignored() {
        let mut t = ReqTracer::enabled(1, 4);
        t.finish(ReqId(99), 0);
        assert_eq!(t.completed_len(), 0);
        assert_eq!(t.e2e_hist().unwrap().count(), 0);
    }
}
