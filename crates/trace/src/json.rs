//! A minimal recursive-descent JSON parser.
//!
//! The workspace is offline (no serde); this parser exists solely so the
//! exporters can validate their own output — Chrome traces and results
//! files — in tests and in `scripts/verify.sh` without external tools.
//! It accepts standard JSON; it is a validator, not a general decoder,
//! so numbers are held as `f64` and objects as ordered pairs.

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number, as `f64`.
    Number(f64),
    /// A string, unescaped.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, as key/value pairs in document order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// The value under `key`, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The text, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }
}

/// Parses `doc` as a single JSON document.
pub fn parse(doc: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: doc.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(pairs));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            // Surrogate pairs don't appear in our own output;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(format!(
                                "bad escape {:?} at byte {}",
                                other.map(|c| c as char),
                                self.pos
                            ))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // byte-wise continuation handling is safe).
                    let start = self.pos;
                    self.pos += 1;
                    while self.bytes.get(self.pos).is_some_and(|&b| b & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|e| e.to_string())?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| format!("bad number {text:?} at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let doc = r#"{"traceEvents":[{"name":"kill","ts":10.500,"args":{"ok":true}},[1,-2.5,null]],"dropped":0}"#;
        let v = parse(doc).unwrap();
        let events = v.get("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(events[0].get("name").unwrap().as_str(), Some("kill"));
        assert_eq!(events[0].get("ts").unwrap().as_f64(), Some(10.5));
        assert_eq!(
            events[0].get("args").unwrap().get("ok"),
            Some(&JsonValue::Bool(true))
        );
        assert_eq!(v.get("dropped").unwrap().as_f64(), Some(0.0));
    }

    #[test]
    fn unescapes_strings() {
        let v = parse(r#""a\"b\\c\ndA""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndA"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,]", "{\"a\"1}", "tru", "\"abc", "1 2"] {
            assert!(parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn roundtrips_our_escaper() {
        let original = "quote\" slash\\ newline\n ctrl\u{1} done";
        let doc = format!("\"{}\"", crate::metrics::json_escape(original));
        assert_eq!(parse(&doc).unwrap().as_str(), Some(original));
    }
}
