//! The bounded, virtual-time event recorder and its query API.
//!
//! A [`Tracer`] is disabled by default: the emit path is then a single
//! branch on an `Option` discriminant and never runs the caller's
//! event-construction closure, so string-bearing events cost nothing
//! until tracing is switched on. When enabled, events land in a bounded
//! ring; once full the oldest event is dropped and counted, never the
//! newest — recovery milestones near the end of a run survive.

use std::collections::VecDeque;

use kite_sim::Nanos;

/// What became of an `evtchn_send`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NotifyOutcome {
    /// The pending bit flipped and an interrupt will be delivered.
    Delivered,
    /// The port was already pending; the edge coalesced.
    Coalesced,
    /// A fault-injected drop: the edge was lost in "hardware".
    Dropped,
}

impl NotifyOutcome {
    /// Stable lower-case label, used in renderings and queries.
    pub fn name(self) -> &'static str {
        match self {
            NotifyOutcome::Delivered => "delivered",
            NotifyOutcome::Coalesced => "coalesced",
            NotifyOutcome::Dropped => "dropped",
        }
    }
}

/// The typed payload of one trace event.
///
/// Domain and port identifiers are carried as raw integers: this crate
/// sits below `kite-xen` in the dependency graph, so it cannot name
/// `DomainId`/`Port` — emitters pass `id.0`.
#[derive(Clone, Debug)]
pub enum EventKind {
    /// A charged hypercall other than `gnttab_copy` (those get their own
    /// [`EventKind::GrantCopyBatch`] record with batch detail).
    Hypercall {
        /// Hypercall name, e.g. `"gnttab_map"`.
        op: &'static str,
        /// Payload bytes billed with the call, if any.
        bytes: u64,
        /// Virtual cost charged to the calling domain.
        cost: Nanos,
    },
    /// One batched `GNTTABOP_copy` hypercall.
    GrantCopyBatch {
        /// Copy descriptors carried by the batch.
        ops: u32,
        /// Descriptors that completed with `Okay` status.
        ok_ops: u32,
        /// Bytes actually moved (failed descriptors move none).
        bytes: u64,
        /// Virtual cost of the whole batch.
        cost: Nanos,
    },
    /// An `evtchn_send` and its outcome.
    Notify {
        /// Domain on the receiving end of the channel.
        to_dom: u16,
        /// The receiver's port number.
        port: u32,
        /// Delivered, coalesced, or fault-dropped.
        outcome: NotifyOutcome,
        /// Virtual cost charged to the sender.
        cost: Nanos,
    },
    /// A fault-injected delay added to one interrupt delivery.
    NotifyDelayed {
        /// Extra latency beyond the cost model's IRQ delivery time.
        extra: Nanos,
    },
    /// A xenbus state node transition committed to the store.
    XenbusState {
        /// Full path of the `state` node.
        path: String,
        /// The new state's lower-case name, e.g. `"connected"`.
        state: &'static str,
    },
    /// A [`DeviceLifecycle`] operation on a backend device.
    ///
    /// [`DeviceLifecycle`]: ../../kite_core/lifecycle/struct.DeviceLifecycle.html
    Lifecycle {
        /// Device identity, `<kind>/<frontend-domain>/<index>`.
        device: String,
        /// `"connect"`, `"suspend"`, `"close"`, `"abandon"`, `"retarget"`,
        /// or `"reconnect"`.
        transition: &'static str,
    },
    /// One non-empty backend ring drain.
    RingDrain {
        /// Which queue drained, e.g. `"netback_tx"`.
        queue: &'static str,
        /// Queue index within a multi-queue backend; `None` for the
        /// legacy single-queue layout (keeps those exports byte-stable).
        /// The Chrome exporter gives every `Some` index its own track.
        qid: Option<u16>,
        /// Ring slots consumed (occupancy at drain start, up to budget).
        consumed: u32,
        /// Frames delivered / requests submitted out of those slots.
        delivered: u32,
        /// Whether the drain ended by notifying the peer.
        notify: bool,
    },
    /// A recovery milestone: `"kill"`, `"detect"`, `"reboot"`,
    /// `"reconnect"`, `"first_byte"` — or any scenario-defined marker.
    Milestone {
        /// Milestone label.
        what: &'static str,
    },
    /// A health-monitor verdict change for one watched backend.
    ///
    /// Emitted on every `Healthy → Suspect → Failed` (and back) edge, so
    /// a Perfetto export shows suspicion windows as spans on the Dom0
    /// track. The event is attributed to the *monitoring* domain; `dom`
    /// on the enclosing [`TraceEvent`] names the watcher, this field the
    /// watched backend.
    HealthTransition {
        /// Raw id of the backend domain whose health changed.
        watched: u16,
        /// New state: `"healthy"`, `"suspect"`, or `"failed"`.
        state: &'static str,
        /// What drove the edge: `"heartbeat"`, `"stall"`, `"slo"`, or
        /// `"recovered"`.
        cause: &'static str,
        /// Consecutive missed probes at the time of the transition.
        missed: u32,
    },
}

impl EventKind {
    /// Stable event-type name used by [`TraceQuery::kind`] and renderers.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::Hypercall { op, .. } => op,
            EventKind::GrantCopyBatch { .. } => "gnttab_copy",
            EventKind::Notify { .. } => "notify",
            EventKind::NotifyDelayed { .. } => "notify_delayed",
            EventKind::XenbusState { .. } => "xenbus_state",
            EventKind::Lifecycle { .. } => "lifecycle",
            EventKind::RingDrain { .. } => "ring_drain",
            EventKind::Milestone { .. } => "milestone",
            EventKind::HealthTransition { .. } => "health",
        }
    }
}

/// One recorded event: a sequence number (total order of emission), a
/// virtual timestamp, the domain the event is attributed to, and the
/// typed payload.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Emission sequence number; strictly increasing, never reused, and
    /// stable across drops (dropped events leave a gap at the front).
    pub seq: u64,
    /// Virtual time of the enclosing simulation event.
    pub at: Nanos,
    /// Raw id of the domain this event is attributed to.
    pub dom: u16,
    /// The payload.
    pub kind: EventKind,
}

struct Inner {
    now: Nanos,
    next_seq: u64,
    dropped: u64,
    capacity: usize,
    ring: VecDeque<TraceEvent>,
}

/// Default ring capacity used by [`Tracer::enabled`]'s convenience
/// callers; sized so a full crash/recovery scenario fits with zero drops.
pub const DEFAULT_CAPACITY: usize = 1 << 16;

/// Bounded recorder of [`TraceEvent`]s, stamped with virtual time.
#[derive(Default)]
pub struct Tracer {
    inner: Option<Box<Inner>>,
}

impl Tracer {
    /// A tracer that records nothing; the emit path is one branch.
    pub fn disabled() -> Tracer {
        Tracer { inner: None }
    }

    /// A tracer recording into a drop-oldest ring of `capacity` events.
    pub fn enabled(capacity: usize) -> Tracer {
        let mut t = Tracer::disabled();
        t.enable(capacity);
        t
    }

    /// Switches recording on (idempotent: an enabled tracer keeps its
    /// events and capacity).
    pub fn enable(&mut self, capacity: usize) {
        if self.inner.is_none() {
            self.inner = Some(Box::new(Inner {
                now: Nanos::ZERO,
                next_seq: 0,
                dropped: 0,
                capacity: capacity.max(1),
                ring: VecDeque::new(),
            }));
        }
    }

    /// Whether events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Advances the clock used to stamp subsequent events. Called once
    /// per simulation event; emitters never pass time explicitly.
    pub fn set_now(&mut self, now: Nanos) {
        if let Some(inner) = &mut self.inner {
            inner.now = now;
        }
    }

    /// The current virtual timestamp ([`Nanos::ZERO`] when disabled).
    pub fn now(&self) -> Nanos {
        self.inner.as_ref().map_or(Nanos::ZERO, |i| i.now)
    }

    /// Records the event built by `f`, attributed to domain `dom`.
    ///
    /// `f` runs only when the tracer is enabled, so event construction
    /// (including any allocation) is skipped entirely on the disabled
    /// path — that is the whole cost contract of this crate.
    #[inline]
    pub fn emit_with(&mut self, dom: u16, f: impl FnOnce() -> EventKind) {
        let Some(inner) = &mut self.inner else {
            return;
        };
        let _prof = kite_prof::span(kite_prof::Phase::TraceEmit);
        if inner.ring.len() == inner.capacity {
            inner.ring.pop_front();
            inner.dropped += 1;
        }
        let seq = inner.next_seq;
        inner.next_seq += 1;
        inner.ring.push_back(TraceEvent {
            seq,
            at: inner.now,
            dom,
            kind: f(),
        });
    }

    /// Events dropped from the front of the ring since enabling.
    pub fn dropped(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.dropped)
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.inner.as_ref().map_or(0, |i| i.ring.len())
    }

    /// Whether no events are held (also true when disabled).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates the held events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.inner.iter().flat_map(|i| i.ring.iter())
    }

    /// Discards all held events (capacity and clock are kept).
    pub fn clear(&mut self) {
        if let Some(inner) = &mut self.inner {
            inner.ring.clear();
        }
    }

    /// A query over every held event.
    pub fn query(&self) -> TraceQuery<'_> {
        TraceQuery {
            events: self.events().collect(),
        }
    }
}

/// A filtered view over a tracer's events, for test assertions.
///
/// Filters consume and return the query, so assertions chain:
/// `t.query().dom(2).kind("gnttab_copy").count()`.
pub struct TraceQuery<'a> {
    events: Vec<&'a TraceEvent>,
}

impl<'a> TraceQuery<'a> {
    /// Keeps events matching `pred`.
    pub fn filter(mut self, pred: impl Fn(&TraceEvent) -> bool) -> Self {
        self.events.retain(|e| pred(e));
        self
    }

    /// Keeps events whose [`EventKind::name`] equals `name`.
    pub fn kind(self, name: &str) -> Self {
        self.filter(|e| e.kind.name() == name)
    }

    /// Keeps events attributed to domain `dom`.
    pub fn dom(self, dom: u16) -> Self {
        self.filter(|e| e.dom == dom)
    }

    /// Keeps events with `lo <= at <= hi` (virtual time, inclusive).
    pub fn between(self, lo: Nanos, hi: Nanos) -> Self {
        self.filter(|e| lo <= e.at && e.at <= hi)
    }

    /// Keeps events with `lo < seq < hi` (emission order, exclusive):
    /// "strictly between these two events", immune to timestamp ties.
    pub fn seq_between(self, lo: u64, hi: u64) -> Self {
        self.filter(|e| lo < e.seq && e.seq < hi)
    }

    /// Number of events in the view.
    pub fn count(&self) -> usize {
        self.events.len()
    }

    /// Oldest event in the view.
    pub fn first(&self) -> Option<&'a TraceEvent> {
        self.events.first().copied()
    }

    /// Newest event in the view.
    pub fn last(&self) -> Option<&'a TraceEvent> {
        self.events.last().copied()
    }

    /// Iterates the view, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &'a TraceEvent> + '_ {
        self.events.iter().copied()
    }

    /// The first [`EventKind::Milestone`] named `what`, if any.
    pub fn milestone(&self, what: &str) -> Option<&'a TraceEvent> {
        self.events
            .iter()
            .copied()
            .find(|e| matches!(e.kind, EventKind::Milestone { what: w } if w == what))
    }

    /// Virtual-time span from the first milestone `from` to the first
    /// milestone `to` at-or-after it.
    pub fn span_between(&self, from: &str, to: &str) -> Option<Nanos> {
        let a = self.milestone(from)?;
        let b = self.events.iter().copied().find(|e| {
            e.seq > a.seq && matches!(e.kind, EventKind::Milestone { what: w } if w == to)
        })?;
        Some(b.at.saturating_sub(a.at))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn milestone(what: &'static str) -> EventKind {
        EventKind::Milestone { what }
    }

    #[test]
    fn disabled_tracer_records_nothing_and_never_calls_the_closure() {
        let mut t = Tracer::disabled();
        t.set_now(Nanos::from_secs(1));
        t.emit_with(0, || panic!("closure must not run when disabled"));
        assert!(!t.is_enabled());
        assert_eq!(t.len(), 0);
        assert_eq!(t.dropped(), 0);
        assert_eq!(t.now(), Nanos::ZERO);
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let mut t = Tracer::enabled(3);
        for i in 0..5u64 {
            t.set_now(Nanos::from_nanos(i));
            t.emit_with(0, || milestone("tick"));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        // Oldest survivor is the third emission (seq 2).
        assert_eq!(t.events().next().unwrap().seq, 2);
        assert_eq!(t.query().last().unwrap().at, Nanos::from_nanos(4));
    }

    #[test]
    fn seq_ids_are_deterministic_and_dense() {
        let mut t = Tracer::enabled(16);
        for _ in 0..4 {
            t.emit_with(1, || milestone("m"));
        }
        let seqs: Vec<u64> = t.events().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3]);
    }

    #[test]
    fn query_filters_compose() {
        let mut t = Tracer::enabled(16);
        t.set_now(Nanos::from_micros(1));
        t.emit_with(1, || milestone("kill"));
        t.set_now(Nanos::from_micros(2));
        t.emit_with(2, || EventKind::Notify {
            to_dom: 1,
            port: 4,
            outcome: NotifyOutcome::Delivered,
            cost: Nanos::from_nanos(700),
        });
        t.set_now(Nanos::from_micros(5));
        t.emit_with(1, || milestone("reconnect"));
        assert_eq!(t.query().count(), 3);
        assert_eq!(t.query().kind("notify").count(), 1);
        assert_eq!(t.query().dom(1).count(), 2);
        assert_eq!(
            t.query()
                .between(Nanos::from_micros(2), Nanos::from_micros(5))
                .count(),
            2
        );
        let q = t.query();
        let kill = q.milestone("kill").unwrap();
        let rec = q.milestone("reconnect").unwrap();
        assert_eq!(
            q.span_between("kill", "reconnect"),
            Some(Nanos::from_micros(4))
        );
        assert_eq!(
            t.query()
                .seq_between(kill.seq, rec.seq)
                .kind("notify")
                .count(),
            1
        );
    }

    #[test]
    fn span_between_edge_cases_return_none() {
        let mut t = Tracer::enabled(16);
        t.set_now(Nanos::from_micros(1));
        t.emit_with(0, || milestone("kill"));
        t.set_now(Nanos::from_micros(3));
        t.emit_with(0, || milestone("detect"));
        let q = t.query();
        // Missing start milestone.
        assert_eq!(q.span_between("nonesuch", "detect"), None);
        // Missing end milestone.
        assert_eq!(q.span_between("kill", "nonesuch"), None);
        // End emitted before start: span_between only looks forward in
        // emission order, so the reversed query finds nothing.
        assert_eq!(q.span_between("detect", "kill"), None);
        // Empty tracer: no milestones at all.
        let empty = Tracer::enabled(4);
        assert_eq!(empty.query().span_between("kill", "detect"), None);
        // Sanity: the forward query still works.
        assert_eq!(
            q.span_between("kill", "detect"),
            Some(Nanos::from_micros(2))
        );
    }

    #[test]
    fn enable_is_idempotent() {
        let mut t = Tracer::enabled(8);
        t.emit_with(0, || milestone("once"));
        t.enable(2);
        assert_eq!(t.len(), 1, "re-enable keeps events and capacity");
        t.emit_with(0, || milestone("twice"));
        t.emit_with(0, || milestone("thrice"));
        assert_eq!(t.dropped(), 0, "original capacity of 8 still in force");
    }
}
