//! The experiment registry: one entry per paper table/figure.

use kite_security as sec;
use kite_sim::{Nanos, OnlineStats, Pcg};
use kite_system::BackendOs;
use kite_workloads as wl;

/// One runnable experiment.
pub struct Experiment {
    /// Short id (`fig7`, `table3`, …).
    pub id: &'static str,
    /// Human title.
    pub title: &'static str,
    /// Runs and prints the experiment.
    pub run: fn(),
}

/// All experiments in paper order.
pub fn all_experiments() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "fig1a",
            title: "Driver CVEs per year (context data)",
            run: fig1a,
        },
        Experiment {
            id: "fig5",
            title: "ROP gadgets by category (also Fig 1b totals)",
            run: fig5,
        },
        Experiment {
            id: "table1",
            title: "Lines of code of Kite components",
            run: table1,
        },
        Experiment {
            id: "table3",
            title: "CVEs prevented by syscall removal",
            run: table3,
        },
        Experiment {
            id: "fig4",
            title: "Syscall count, image size, boot time",
            run: fig4,
        },
        Experiment {
            id: "fig6",
            title: "nuttcp UDP throughput + loss",
            run: fig6,
        },
        Experiment {
            id: "fig7",
            title: "Network latency: ping / Netperf / memtier",
            run: fig7,
        },
        Experiment {
            id: "fig8",
            title: "Apache throughput (file-size sweep + 512KB detail)",
            run: fig8,
        },
        Experiment {
            id: "fig9",
            title: "Redis pipelined SET/GET",
            run: fig9,
        },
        Experiment {
            id: "fig10",
            title: "MySQL network-bound (throughput + DomU CPU)",
            run: fig10,
        },
        Experiment {
            id: "table4",
            title: "Relative standard deviations",
            run: table4,
        },
        Experiment {
            id: "fig11",
            title: "dd sequential storage throughput",
            run: fig11,
        },
        Experiment {
            id: "fig12",
            title: "SysBench file I/O (threads + block-size sweeps)",
            run: fig12,
        },
        Experiment {
            id: "fig13",
            title: "MySQL storage-bound",
            run: fig13,
        },
        Experiment {
            id: "fig14",
            title: "Filebench fileserver (I/O-size sweep)",
            run: fig14,
        },
        Experiment {
            id: "fig15",
            title: "Filebench MongoDB profile",
            run: fig15,
        },
        Experiment {
            id: "fig16",
            title: "Filebench webserver",
            run: fig16,
        },
        Experiment {
            id: "dhcp",
            title: "§5.5 daemon VM: perfdhcp DORA latency",
            run: dhcp,
        },
        Experiment {
            id: "mem",
            title: "Driver-domain memory footprint (§1's motivation)",
            run: mem,
        },
    ]
}

fn fig1a() {
    println!(
        "{:>6} {:>14} {:>16}",
        "year", "linux drivers", "windows drivers"
    );
    for (y, l, w) in sec::driver_cves_by_year() {
        println!("{y:>6} {l:>14} {w:>16}");
    }
    println!("(paper: counts rise steeply across the window — shape identical)");
}

fn fig5() {
    println!(
        "scanning synthetic images (scale 1/{})...",
        sec::gadgets::SCAN_SCALE
    );
    println!(
        "{:<10} {:>12} {:>10} {:>10} {:>10} {:>10}",
        "os", "total", "datamove", "arith", "ctrlflow", "ret"
    );
    let mut totals = Vec::new();
    for p in sec::figure5_profiles() {
        let c = sec::analyze(&p, 42);
        totals.push((p.name, c.total()));
        println!(
            "{:<10} {:>12} {:>10} {:>10} {:>10} {:>10}",
            p.name,
            c.total(),
            c.get(sec::Category::DataMove),
            c.get(sec::Category::Arithmetic),
            c.get(sec::Category::ControlFlow),
            c.get(sec::Category::Ret),
        );
    }
    let kite = totals[0].1 as f64;
    println!(
        "ratios vs Kite: default {:.1}x (paper ≈4x), Ubuntu {:.1}x (paper ≈11x)",
        totals[1].1 as f64 / kite,
        totals[5].1 as f64 / kite
    );
}

fn table1() {
    // Our analogous components, counted from the source tree at build time
    // is overkill; report the paper's numbers beside our module map.
    println!("paper component        paper LoC   this reproduction");
    println!("Blkback                     1904   kite-core::blkback");
    println!("Netback                     2791   kite-core::netback");
    println!("HVM extension               1100   kite-xen::xenstore/xenbus + kite-core::backend");
    println!("Configuration                450   kite-core::netapp/blockapp/config");
    println!(
        "Utilities                    222   kite-core::utils (ifconfig/brconfig interpreters)"
    );
    println!("Daemon VM                     16   kite-core::dhcpd (full server here)");
}

fn table3() {
    let cves = sec::table3_cves();
    let kite = sec::DomainSurface::kite_network();
    let kite_st = sec::DomainSurface::kite_storage();
    let ubuntu = sec::DomainSurface::ubuntu();
    println!(
        "{:<16} {:>6} {:>8} {:>8}",
        "CVE", "kite", "kite-st", "ubuntu"
    );
    for c in &cves {
        println!(
            "{:<16} {:>6} {:>8} {:>8}",
            c.id,
            if kite.mitigates(c) { "safe" } else { "HIT" },
            if kite_st.mitigates(c) { "safe" } else { "HIT" },
            if ubuntu.mitigates(c) { "safe" } else { "HIT" },
        );
    }
    println!(
        "kite mitigates {}/11, ubuntu {}/11 (paper: all 11 vs ~0)",
        kite.mitigated(&cves).len(),
        ubuntu.mitigated(&cves).len()
    );
    for c in sec::environment_cves() {
        println!(
            "{:<16} {:>6} {:>8} {:>8}  (toolstack class)",
            c.id,
            if kite.mitigates(&c) { "safe" } else { "HIT" },
            if kite_st.mitigates(&c) { "safe" } else { "HIT" },
            if ubuntu.mitigates(&c) { "safe" } else { "HIT" },
        );
    }
}

fn fig4() {
    println!(
        "{:<16} {:>10} {:>12} {:>10} {:>12}",
        "domain", "syscalls", "image MiB", "boot s", "CVEs fixed"
    );
    for row in sec::surface_report() {
        println!(
            "{:<16} {:>10} {:>12.1} {:>10.1} {:>9}/11",
            row.name,
            row.syscalls,
            row.image_bytes as f64 / (1024.0 * 1024.0),
            row.boot_secs,
            row.cves_mitigated
        );
    }
    println!("(paper: 14/18 vs 171 syscalls; ~10x image; 7s vs 75s boot)");
}

fn fig6() {
    println!(
        "{:<8} {:>14} {:>10} {:>12}",
        "os", "goodput Gbps", "loss %", "driver CPU %"
    );
    for os in BackendOs::both() {
        let r = wl::nuttcp::run(os, &wl::nuttcp::NuttcpParams::default(), 42);
        println!(
            "{:<8} {:>14.2} {:>10.2} {:>12.1}",
            os.name(),
            r.goodput_gbps,
            r.loss * 100.0,
            r.driver_cpu
        );
    }
    println!("(paper: ≈7 Gbps, <1.5% loss for both)");
}

fn fig7() {
    println!(
        "{:<8} {:>10} {:>10} {:>12} {:>12} {:>12}",
        "os", "ping ms", "ping p99", "netperf ms", "netperf p99", "memtier ms"
    );
    for os in BackendOs::both() {
        let r = wl::latency::figure7(os, 42);
        println!(
            "{:<8} {:>10.2} {:>10.2} {:>12.2} {:>12.2} {:>12.2}",
            os.name(),
            r.ping.mean_ms,
            r.ping.p99_ms,
            r.netperf.mean_ms,
            r.netperf.p99_ms,
            r.memtier.mean_ms
        );
    }
    println!("(paper: ping 0.51/0.31, netperf 0.18/0.10, memtier 0.16/0.15)");
}

fn fig8() {
    println!("-- Fig 8a: server throughput vs file size (MB/s) --");
    print!("{:<8}", "os");
    for sz in wl::apache::FIG8A_SIZES {
        print!("{:>10}", human(sz));
    }
    println!();
    for os in BackendOs::both() {
        print!("{:<8}", os.name());
        for r in wl::apache::figure8a(os, 1200, 42) {
            print!("{:>10.0}", r.throughput_mbps);
        }
        println!();
    }
    println!("-- Fig 8b: 512KB file, 40 concurrent --");
    println!(
        "{:<8} {:>12} {:>10} {:>12} {:>10}",
        "os", "MB/s", "time s", "req/s", "lat ms"
    );
    for os in BackendOs::both() {
        let r = wl::apache::run(os, 524_288, 2000, 40, 43);
        println!(
            "{:<8} {:>12.1} {:>10.3} {:>12.0} {:>10.2}",
            os.name(),
            r.throughput_mbps,
            r.time_secs,
            r.requests_per_sec,
            r.latency_ms
        );
    }
}

fn fig9() {
    println!(
        "{:<8} {:>8} {:>14} {:>14}",
        "os", "threads", "SET ops/s", "GET ops/s"
    );
    for os in BackendOs::both() {
        for r in wl::redis::figure9(os, 8000, 42) {
            println!(
                "{:<8} {:>8} {:>14.0} {:>14.0}",
                os.name(),
                r.threads,
                r.set_ops_per_sec,
                r.get_ops_per_sec
            );
        }
    }
    println!("(paper: flat across threads, Kite ≈ Linux, log-scale)");
}

fn fig10() {
    println!(
        "{:<8} {:>8} {:>10} {:>14}",
        "os", "threads", "tps", "DomU CPU %"
    );
    for os in BackendOs::both() {
        for r in wl::mysql::figure10(os, 2000, 42) {
            println!(
                "{:<8} {:>8} {:>10.0} {:>14.1}",
                os.name(),
                r.threads,
                r.tps,
                r.guest_cpu
            );
        }
    }
    println!("(paper: climbs to ~6k, Kite ≈ Linux on both panels)");
}

fn table4() {
    // RSDs from repeated runs with different seeds.
    println!(
        "{:<10} {:>12} {:>12}",
        "benchmark", "Linux RSD %", "Kite RSD %"
    );
    let rsd = |f: &dyn Fn(u64) -> f64| -> f64 {
        let mut s = OnlineStats::new();
        for seed in 0..5 {
            s.push(f(seed));
        }
        s.rsd_percent()
    };
    for (name, os) in [("Apache", BackendOs::Linux), ("Apache", BackendOs::Kite)] {
        let v = rsd(&|seed| wl::apache::run(os, 65536, 400, 40, seed).throughput_mbps);
        if os == BackendOs::Linux {
            print!("{:<10} {:>12.4}", name, v);
        } else {
            println!(" {:>12.4}", v);
        }
    }
    for (name, os) in [("Redis", BackendOs::Linux), ("Redis", BackendOs::Kite)] {
        let v = rsd(&|seed| wl::redis::run(os, 10, 3000, seed).get_ops_per_sec);
        if os == BackendOs::Linux {
            print!("{:<10} {:>12.4}", name, v);
        } else {
            println!(" {:>12.4}", v);
        }
    }
    for (name, os) in [("Memtier", BackendOs::Linux), ("Memtier", BackendOs::Kite)] {
        let v = rsd(&|seed| wl::latency::memtier(os, 4, 600, 8192, seed).mean());
        if os == BackendOs::Linux {
            print!("{:<10} {:>12.4}", name, v);
        } else {
            println!(" {:>12.4}", v);
        }
    }
    for (name, os) in [
        ("Sysbench", BackendOs::Linux),
        ("Sysbench", BackendOs::Kite),
    ] {
        let v = rsd(&|seed| wl::mysql::run_net(os, 20, 600, seed).tps);
        if os == BackendOs::Linux {
            print!("{:<10} {:>12.4}", name, v);
        } else {
            println!(" {:>12.4}", v);
        }
    }
    println!("(paper: all ≤1.5%; determinism here makes seed-variance the analog)");
}

fn fig11() {
    println!("{:<8} {:>12} {:>12}", "os", "read MB/s", "write MB/s");
    for os in BackendOs::both() {
        let r = wl::dd::run(os, true, 128 << 20, 42);
        let w = wl::dd::run(os, false, 128 << 20, 42);
        println!("{:<8} {:>12.0} {:>12.0}", os.name(), r.mbps, w.mbps);
    }
    println!("(paper: ≈1 GB/s class, Kite ≈ Linux)");
}

fn fig12() {
    println!("-- Fig 12a: 256KB blocks, thread sweep (MB/s) --");
    print!("{:<8}", "os");
    for t in [1u16, 5, 20, 60, 100] {
        print!("{t:>8}");
    }
    println!();
    for os in BackendOs::both() {
        print!("{:<8}", os.name());
        for t in [1u16, 5, 20, 60, 100] {
            let r = wl::fileio::run(os, t, 256 * 1024, 100 + 8 * u64::from(t), 42);
            print!("{:>8.0}", r.mbps);
        }
        println!();
    }
    println!("-- Fig 12b: 20 threads, block-size sweep (MB/s) --");
    print!("{:<8}", "os");
    for b in [16 << 10, 256 << 10, 4 << 20, 64 << 20] {
        print!("{:>10}", human(b));
    }
    println!();
    for os in BackendOs::both() {
        print!("{:<8}", os.name());
        for b in [16usize << 10, 256 << 10, 4 << 20, 64 << 20] {
            let ops = (64usize << 20) / b.max(1 << 16) + 40;
            let r = wl::fileio::run(os, 20, b, ops as u64, 43);
            print!("{:>10.0}", r.mbps);
        }
        println!();
    }
    println!("(paper: rises with both threads and block size; Kite ≥ Linux at the high end)");
}

fn fig13() {
    println!(
        "{:<8} {:>8} {:>10} {:>12}",
        "os", "threads", "tps", "read MB/s"
    );
    for os in BackendOs::both() {
        for t in [1u16, 10, 40, 100] {
            let r = wl::mysql::run_storage(os, t, 10, 42);
            println!(
                "{:<8} {:>8} {:>10.0} {:>12.1}",
                os.name(),
                r.threads,
                r.tps,
                r.read_mbps
            );
        }
    }
    println!("(paper: identical curves for Kite and Linux)");
}

fn fig14() {
    print!("{:<8}", "os");
    for b in [16 << 10, 128 << 10, 1 << 20, 8 << 20] {
        print!("{:>10}", human(b));
    }
    println!("  (fileserver MB/s)");
    for os in BackendOs::both() {
        print!("{:<8}", os.name());
        for b in [16usize << 10, 128 << 10, 1 << 20, 8 << 20] {
            let ops = 400usize / (1 + b / (1 << 20)) + 60;
            let r = wl::filebench::fileserver(os, b, ops as u64, 42);
            print!("{:>10.0}", r.mbps);
        }
        println!();
    }
    println!("(paper: 200→650 MB/s rising with I/O size, Kite slightly better)");
}

fn fig15() {
    println!(
        "{:<8} {:>12} {:>10} {:>10}",
        "os", "thpt Mbps", "us/op", "lat ms"
    );
    for os in BackendOs::both() {
        let r = wl::filebench::mongodb(os, 120, 42);
        println!(
            "{:<8} {:>12.0} {:>10.0} {:>10.2}",
            os.name(),
            r.mbps * 8.0,
            r.us_per_op,
            r.latency_ms
        );
    }
    println!("(paper: Kite outperforms at low concurrency: 770 vs 700 Mbps class)");
}

fn fig16() {
    println!(
        "{:<8} {:>12} {:>10} {:>10}",
        "os", "thpt Mbps", "us/op", "lat ms"
    );
    for os in BackendOs::both() {
        let r = wl::filebench::webserver(os, 400, 42);
        println!(
            "{:<8} {:>12.0} {:>10.0} {:>10.2}",
            os.name(),
            r.mbps * 8.0,
            r.us_per_op,
            r.latency_ms
        );
    }
    println!("(paper: Kite slightly higher throughput, lower latency)");
}

fn dhcp() {
    println!(
        "{:<8} {:>18} {:>16}",
        "daemon", "discover→offer ms", "request→ack ms"
    );
    for d in [
        wl::perfdhcp::DaemonOs::Rumprun,
        wl::perfdhcp::DaemonOs::Linux,
    ] {
        let r = wl::perfdhcp::run(d, 400, 400, 42);
        println!(
            "{:<8} {:>18.2} {:>16.2}",
            d.name(),
            r.discover_offer_ms,
            r.request_ack_ms
        );
    }
    println!("(paper: ≈0.78 and ≈0.70 ms, rumprun ≈ Linux)");
}

fn mem() {
    // The paper assigns Kite domains 1 GB vs Linux's 2 GB "since rumprun's
    // footprint is smaller"; actual working sets are far smaller still.
    // Run a short network workload and report reservation + pages touched.
    println!(
        "{:<8} {:>14} {:>12} {:>18}",
        "os", "reservation", "image", "data-plane pages"
    );
    for os in BackendOs::both() {
        let params = wl::nuttcp::NuttcpParams {
            duration: Nanos::from_millis(20),
            ..Default::default()
        };
        let _ = params;
        let mut sys = kite_system::NetSystem::new(os, 42);
        sys.send_udp_at(
            Nanos::from_millis(1),
            kite_system::Side::Client,
            kite_system::addrs::GUEST,
            7,
            4000,
            vec![0; 8192],
        );
        sys.run_to_quiescence();
        let dd = sys.driver_domain();
        let dom = sys.hv.domains.get(dd).expect("driver domain");
        let pages = dom.pages_allocated;
        let image_mib = match os {
            BackendOs::Kite => {
                kite_rumprun::kite_network_image().total_bytes as f64 / (1024.0 * 1024.0)
            }
            BackendOs::Linux => kite_linux::ubuntu_image_bytes() as f64 / (1024.0 * 1024.0),
        };
        println!(
            "{:<8} {:>11} MiB {:>8.1} MiB {:>18}",
            os.name(),
            dom.mem_mib,
            image_mib,
            pages
        );
    }
    println!("(paper: 1 GB vs 2 GB reservations; unikernel working set is KB-scale)");
}

fn human(bytes: usize) -> String {
    if bytes >= 1 << 20 {
        format!("{}M", bytes >> 20)
    } else if bytes >= 1 << 10 {
        format!("{}K", bytes >> 10)
    } else {
        format!("{bytes}B")
    }
}

/// Smoke helper used by bench targets: a short deterministic run.
pub fn quick_seed() -> Pcg {
    Pcg::seeded(0x4b697465)
}

/// Quick sanity value used by the boot bench.
pub fn boot_times() -> (Nanos, Nanos) {
    (
        kite_rumprun::kite_boot().total(),
        kite_linux::ubuntu_boot().total(),
    )
}
