//! Shared reporting for benches, examples and the `repro` binary.
//!
//! Every scenario result funnels through [`MetricsSnapshot`], so the
//! text a bench prints and the machine-readable JSON `repro --json`
//! writes come from the same values and cannot drift apart.

use std::io::Write as _;

use kite_net::ether::ETH_FRAME_MAX;
use kite_sim::{Nanos, SchedulerKind};
use kite_system::{
    addrs, render_top, BackendOs, DetectionMode, IoKind, IoOp, LineRate, MonitorConfig, NetSystem,
    Reply, Side, SystemConfig,
};
use kite_trace::metrics::{render_json, validate_json};
use kite_trace::MetricsSnapshot;
use kite_xen::{CopyMode, FaultPlan, QueueMode};

/// Prints snapshots in the shared text rendering.
pub fn print_snapshots(snaps: &[MetricsSnapshot]) {
    for s in snaps {
        print!("{}", s.render_text());
    }
}

/// Renders snapshots as the machine-readable results JSON, validates
/// the document, and writes it to `path`. Returns the row count.
pub fn write_json(path: &str, snaps: &[MetricsSnapshot]) -> std::io::Result<usize> {
    let doc = render_json(snaps);
    let rows =
        validate_json(&doc).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    let mut f = std::fs::File::create(path)?;
    f.write_all(doc.as_bytes())?;
    Ok(rows)
}

/// Virtual grant-copy cost of one 32-op drain, batched vs one hypercall
/// per op — the mechanisms micro-measurement behind the batching win.
pub fn grant_copy_snapshot() -> MetricsSnapshot {
    use kite_xen::{CopySide, DomainKind, GrantCopyOp, Hypervisor};
    let mut hv = Hypervisor::new();
    hv.create_domain("Domain-0", DomainKind::Dom0, 1024, 4);
    let dd = hv.create_domain("dd", DomainKind::Driver, 256, 1);
    let gu = hv.create_domain("guest", DomainKind::Guest, 256, 2);
    const NOPS: usize = 32;
    const LEN: usize = ETH_FRAME_MAX;
    let mut ops = Vec::with_capacity(NOPS);
    for _ in 0..NOPS {
        let src = hv.alloc_page(gu).expect("page");
        let dst = hv.alloc_page(dd).expect("page");
        let gref = hv.grant_access(gu, dd, src, true).expect("grant");
        ops.push(GrantCopyOp {
            src: CopySide::Grant {
                granter: gu,
                gref,
                offset: 0,
            },
            dst: CopySide::Local {
                page: dst,
                offset: 0,
            },
            len: LEN,
        });
    }
    let batched = hv.grant_copy_ops(dd, &ops, CopyMode::Batched).cost;
    let single = hv.grant_copy_ops(dd, &ops, CopyMode::SingleOp).cost;
    let mut snap = MetricsSnapshot::new("mechanisms/grant_copy");
    snap.push_int("ops", "count", NOPS as u64);
    snap.push_int("op_bytes", "bytes", LEN as u64);
    snap.push_int("batched_cost", "ns", batched.as_nanos());
    snap.push_int("single_op_cost", "ns", single.as_nanos());
    snap.push_int("batched_saves", "ns", (single - batched).as_nanos());
    snap.push_int("hypercalls_saved", "count", (NOPS - 1) as u64);
    snap.push_float("bytes_per_hypercall", "bytes", (NOPS * LEN) as f64);
    snap
}

/// One full crash/restart cycle: steady UDP stream, driver domain killed
/// at 2 s, service restored through the OS boot model. Returns the
/// system after quiescence (stats, trace and metrics still attached).
pub fn recovery_cycle(os: BackendOs, seed: u64) -> NetSystem {
    recovery_cycle_with(os, seed, DetectionMode::Oracle)
}

/// [`recovery_cycle`] with an explicit failure-detection mode. Watchdog
/// runs detect the kill through the heartbeat monitor, so their
/// `detect_latency` row reports a real (positive) detection cost; oracle
/// runs report zero by construction.
pub fn recovery_cycle_with(os: BackendOs, seed: u64, mode: DetectionMode) -> NetSystem {
    let mut sys = NetSystem::new(os, seed);
    if mode == DetectionMode::Watchdog {
        sys.enable_watchdog(MonitorConfig::default());
    }
    for i in 0..120u64 {
        // 30 s of traffic at 4 msg/s: spans the kite (~7 s) outage; the
        // queued tail drains after the Linux (~75 s) reboot too.
        sys.send_udp_at(
            Nanos::from_millis(1 + 250 * i),
            Side::Guest,
            addrs::CLIENT,
            9999,
            1234,
            vec![i as u8; 1400],
        );
    }
    sys.inject_faults(FaultPlan::seeded(seed).with_kill_at(Nanos::from_secs(2)));
    sys.run_to_quiescence();
    sys
}

/// The recovery-cycle result set of an already-run system, named
/// `mechanisms/recovery_<os>` (with a `_watchdog` suffix when the run
/// detected the fault through the heartbeat monitor).
pub fn recovery_snapshot_of(sys: &NetSystem) -> MetricsSnapshot {
    let suffix = match sys.detection_mode() {
        DetectionMode::Oracle => "",
        DetectionMode::Watchdog => "_watchdog",
    };
    sys.metrics_snapshot(format!(
        "mechanisms/recovery_{}{}",
        sys.os.name().to_lowercase(),
        suffix,
    ))
}

/// Runs a recovery cycle and snapshots it.
pub fn recovery_snapshot(os: BackendOs, seed: u64) -> MetricsSnapshot {
    recovery_snapshot_of(&recovery_cycle(os, seed))
}

/// Virtual elapsed time of the blkback data-path ablation (8 MiB of
/// 128 KiB sequential writes) for map/unmap vs batched vs single-op
/// grant copies, with persistent grants off so the data path is hot.
pub fn ablation_snapshot() -> MetricsSnapshot {
    use kite_core::BlkbackTuning;
    fn run(tuning: BlkbackTuning, mode: CopyMode) -> u64 {
        let mut sys = SystemConfig::new(BackendOs::Kite, 1)
            .tuning(tuning)
            .copy_mode(mode)
            .build_stor();
        const CHUNK: usize = 128 * 1024;
        let mut t = Nanos::from_micros(100);
        for i in 0..64u64 {
            sys.submit_at(
                t,
                IoOp {
                    tag: i,
                    kind: IoKind::Write {
                        sector: i * (CHUNK / 512) as u64,
                        data: vec![0x5a; CHUNK],
                    },
                },
            );
            t += Nanos::from_micros(40);
        }
        sys.run_to_quiescence();
        sys.now().as_nanos()
    }
    let no_persistent = BlkbackTuning {
        persistent_grants: false,
        persistent_cap: 0,
        ..BlkbackTuning::default()
    };
    let map_ns = run(
        BlkbackTuning {
            grant_copy: false,
            ..no_persistent
        },
        CopyMode::Batched,
    );
    let batched_ns = run(no_persistent, CopyMode::Batched);
    let single_ns = run(no_persistent, CopyMode::SingleOp);
    let mut snap = MetricsSnapshot::new("ablation/blkback_copy_path");
    snap.push_int("map_unmap", "ns", map_ns);
    snap.push_int("copy_batched", "ns", batched_ns);
    snap.push_int("copy_single_op", "ns", single_ns);
    snap.push_int("batched_saves", "ns", single_ns.saturating_sub(batched_ns));
    snap
}

/// Runs the netback queue-scaling workload: 64 distinct UDP flows
/// (Toeplitz-steered across the queues) bursting guest->client through
/// a driver domain with one vCPU per queue. Returns the finished system.
pub fn netback_queue_cycle(queues: u32, seed: u64) -> NetSystem {
    let mode = if queues <= 1 {
        QueueMode::Single
    } else {
        QueueMode::Multi(queues)
    };
    let mut sys = SystemConfig::new(BackendOs::Kite, seed)
        .queue_mode(mode)
        .build_net();
    for i in 0..512u64 {
        // 64 flows, distinguished by source port, 8 messages each; the
        // burst arrives faster than one vCPU drains it, so the elapsed
        // time exposes the per-queue parallelism.
        sys.send_udp_at(
            Nanos::from_micros(10 + 20 * (i / 64)),
            Side::Guest,
            addrs::CLIENT,
            9999,
            1200 + (i % 64) as u16,
            vec![i as u8; 1400],
        );
    }
    sys.run_to_quiescence();
    sys
}

/// One `mechanisms/netback_queues_<n>` ablation row: virtual elapsed
/// time and throughput of [`netback_queue_cycle`].
pub fn netback_queue_snapshot(queues: u32, seed: u64) -> MetricsSnapshot {
    let sys = netback_queue_cycle(queues, seed);
    let elapsed = sys.now();
    let stats = sys.netback_stats();
    let mut snap = MetricsSnapshot::new(format!("mechanisms/netback_queues_{queues}"));
    snap.push_int("queues", "count", queues as u64);
    snap.push_int("tx_packets", "count", stats.tx_packets);
    snap.push_int("tx_bytes", "bytes", stats.tx_bytes);
    snap.push_int("elapsed", "ns", elapsed.as_nanos());
    snap.push_float(
        "throughput_mbps",
        "mbps",
        stats.tx_bytes as f64 * 8.0 / elapsed.as_secs_f64() / 1e6,
    );
    snap.push_int("drops", "count", sys.metrics.drops);
    snap
}

/// One `mechanisms/blkback_rings_<n>` ablation row: four independent
/// sequential write streams (64 × 8 KiB each, distinct disk regions)
/// interleaved round-robin through `n` blkback rings on an `n`-vCPU
/// driver domain.
///
/// The interleave is the point. Blkfront's ring picker is round-robin,
/// so with four rings each stream lands on its own ring — its own
/// driver vCPU and its own NVMe queue pair, whose sequential cursor
/// sees a pure sequential stream (requests merge into big runs, no
/// random penalties). With one ring every stream funnels through one
/// cursor and one vCPU: every command looks random to the device and
/// the per-request backend CPU work serializes. Two rings split the
/// CPU work but still interleave two streams per cursor. Hence the
/// `rings_4 > rings_2 > rings_1` throughput staircase asserted in
/// [`queue_scaling_snapshots`].
///
/// Pacing (2 µs) keeps rings and the blkfront page pool from
/// saturating, so the round-robin stream→ring affinity never slips.
///
/// The row runs a datacenter-class low-penalty flash profile (2 µs
/// random penalty, via [`SystemConfig::nvme_profile`]) rather than the
/// default consumer-drive profile: with a multi-millisecond penalty the
/// device swamps every CPU effect and one ring looks as good as two.
pub fn blkback_ring_snapshot(rings: u32, seed: u64) -> MetricsSnapshot {
    let mode = if rings <= 1 {
        QueueMode::Single
    } else {
        QueueMode::Multi(rings)
    };
    let mut sys = SystemConfig::new(BackendOs::Kite, seed)
        .queue_mode(mode)
        .nvme_profile(
            kite_devices::NvmeProfile::default().with_random_penalty(Nanos::from_micros(2)),
        )
        .build_stor();
    const CHUNK: usize = 8 * 1024;
    const STREAMS: u64 = 4;
    const PER_STREAM: u64 = 64;
    // Streams live 512 MiB apart: far enough that no cursor ever
    // accidentally continues across streams.
    const REGION_SECTORS: u64 = 1 << 20;
    let mut t = Nanos::from_micros(100);
    for i in 0..(STREAMS * PER_STREAM) {
        let stream = i % STREAMS;
        let idx = i / STREAMS;
        sys.submit_at(
            t,
            IoOp {
                tag: i,
                kind: IoKind::Write {
                    sector: stream * REGION_SECTORS + idx * (CHUNK / 512) as u64,
                    data: vec![0x5a; CHUNK],
                },
            },
        );
        t += Nanos::from_micros(2);
    }
    sys.run_to_quiescence();
    let elapsed = sys.now();
    let stats = sys.blkback_stats();
    let mut snap = MetricsSnapshot::new(format!("mechanisms/blkback_rings_{rings}"));
    snap.push_int("rings", "count", rings as u64);
    snap.push_int("requests", "count", stats.requests);
    snap.push_int("write_bytes", "bytes", stats.write_bytes);
    snap.push_int("elapsed", "ns", elapsed.as_nanos());
    snap.push_float(
        "throughput_mbps",
        "mbps",
        stats.write_bytes as f64 * 8.0 / elapsed.as_secs_f64() / 1e6,
    );
    snap.push_int("nvme_seq_hits", "count", sys.nvme.seq_hits());
    snap.push_int(
        "nvme_random_penalties",
        "count",
        sys.nvme.random_penalties(),
    );
    snap
}

/// Wall-clock scheduler throughput on the fleet-drain microbench:
/// 128 Ki concurrent retransmit timers; each fired timer re-arms its
/// flow, and eight acked flows get their timers cancelled and re-armed
/// — the cancel-heavy churn a fleet of protocol state machines puts on
/// the scheduler (retransmit timers are overwhelmingly cancelled, not
/// fired). Delays spread 1 µs – 1 s so the wheel exercises several
/// levels. The event *counts* are deterministic (seeded Pcg); only the
/// `events_per_sec` rate is wall-clock and varies run to run, which is
/// why `scripts/verify.sh` filters these rows from its byte-determinism
/// diff and instead asserts wheel ≥ heap.
pub fn scheduler_throughput_snapshot(kind: SchedulerKind) -> MetricsSnapshot {
    use kite_sim::{EventId, EventSched, Pcg, Scheduler};
    const FLOWS: usize = 1 << 17;
    const WARMUP: u64 = 1 << 17;
    const POPS: u64 = 1 << 18;
    const ACKS_PER_EVENT: u32 = 8;
    let mut sched: EventSched<u32> = EventSched::new(kind);
    let mut rng = Pcg::seeded(0xf1ee7);
    let mut jitter = move || Nanos::from_nanos(1_000 + rng.index(999_999_001) as u64);
    let mut pending: Vec<Option<EventId>> = vec![None; FLOWS];
    for f in 0..FLOWS as u32 {
        let at = sched.now() + jitter();
        pending[f as usize] = Some(sched.schedule_at(at, f));
    }
    let mut vic_rng = Pcg::seeded(0xaced);
    let mut cancels = 0u64;
    let mut churn = |sched: &mut EventSched<u32>, pops: u64, cancels: &mut u64| {
        for _ in 0..pops {
            let (now, flow) = sched.pop().expect("fleet timers never drain dry");
            pending[flow as usize] = None;
            let id = sched.schedule_at(now + jitter(), flow);
            pending[flow as usize] = Some(id);
            for _ in 0..ACKS_PER_EVENT {
                let victim = vic_rng.index(FLOWS) as u32;
                if let Some(vid) = pending[victim as usize].take() {
                    if sched.cancel(vid) {
                        *cancels += 1;
                    }
                }
                let vid = sched.schedule_at(now + jitter(), victim);
                pending[victim as usize] = Some(vid);
            }
        }
    };
    // Warmup lets slab, bucket and heap capacities reach steady state so
    // the timed window measures scheduling, not allocator growth.
    churn(&mut sched, WARMUP, &mut cancels);
    cancels = 0;
    let start = std::time::Instant::now();
    churn(&mut sched, POPS, &mut cancels);
    let wall = start.elapsed();
    let name = match kind {
        SchedulerKind::Heap => "heap",
        SchedulerKind::Wheel => "wheel",
    };
    let mut snap = MetricsSnapshot::new(format!("mechanisms/sim_events_per_sec_{name}"));
    snap.push_int("flows", "count", FLOWS as u64);
    snap.push_int("events", "count", POPS);
    snap.push_int("cancels", "count", cancels);
    snap.push_int("pending_after", "count", sched.len() as u64);
    snap.push_float("events_per_sec", "rate", POPS as f64 / wall.as_secs_f64());
    snap.mark_wall();
    snap
}

/// Everything `repro prof` prints and exports: the per-phase self-time
/// table and collapsed stacks from a profiled 4-queue netback drain,
/// plus the deterministic time series the run's sampler recorded.
pub struct ProfRun {
    /// Top-down per-phase self-time table (wall clock; nondeterministic).
    pub table: String,
    /// Collapsed stacks, `kite;outer;inner self_ns` per line (wall
    /// clock; nondeterministic values, deterministic paths).
    pub collapsed: String,
    /// Sampler time series as CSV (virtual time; deterministic).
    pub series_csv: String,
    /// Sampler time series as JSON (virtual time; deterministic).
    pub series_json: String,
}

/// Runs the profiled 4-queue netback drain: the
/// [`netback_queue_cycle`] workload stretched over ~16 virtual ms with
/// the profiler and the 500 µs sampler enabled. The spans cover
/// scheduler push/pop, per-kind event dispatch, netback drains,
/// grant-copy batches and trace emission, so the collapsed output shows
/// the full dispatch → drain → copy nesting.
pub fn prof_run() -> ProfRun {
    kite_prof::reset();
    let mut sys = SystemConfig::new(BackendOs::Kite, 7)
        .queues(4)
        .profiling(true)
        .sampling(Nanos::from_micros(500), 256)
        .build_net();
    for i in 0..2048u64 {
        // 64 flows × 32 bursts, one burst every 500 µs: long enough for
        // the sampler to record a real series while the four queues
        // stay busy within each burst.
        sys.send_udp_at(
            Nanos::from_micros(10 + 500 * (i / 64)),
            Side::Guest,
            addrs::CLIENT,
            9999,
            1200 + (i % 64) as u16,
            vec![i as u8; 1400],
        );
    }
    sys.run_to_quiescence();
    let report = kite_prof::report();
    kite_prof::disable();
    kite_prof::reset();
    let sampler = sys.sampler().expect("sampling was enabled");
    ProfRun {
        table: report.render_table(),
        collapsed: report.render_collapsed(),
        series_csv: sampler.to_csv(),
        series_json: sampler.to_json(),
    }
}

/// The `mechanisms/prof_netback_queues_4` rows: per-phase self time and
/// call counts from a profiled [`netback_queue_cycle`] run. Self times
/// are wall clock, so the snapshot is marked `wall` and excluded from
/// byte-determinism diffs.
pub fn prof_phase_snapshot() -> MetricsSnapshot {
    kite_prof::reset();
    kite_prof::enable();
    let _sys = netback_queue_cycle(4, 7);
    let report = kite_prof::report();
    kite_prof::disable();
    kite_prof::reset();
    let mut snap = MetricsSnapshot::new("mechanisms/prof_netback_queues_4");
    for row in &report.rows {
        snap.push_int(format!("{}_self", row.phase.name()), "ns", row.self_ns);
        snap.push_int(format!("{}_calls", row.phase.name()), "count", row.calls);
    }
    snap.mark_wall();
    snap
}

/// One echo cycle for the overhead gate: the client fires 512 messages
/// at the guest, the guest application echoes each one back. Returns
/// the wall time of the event loop only (system construction excluded).
fn echo_cycle(profiled: bool) -> std::time::Duration {
    if profiled {
        kite_prof::enable();
    } else {
        kite_prof::disable();
    }
    kite_prof::reset();
    let mut sys = SystemConfig::new(BackendOs::Kite, 7).queues(4).build_net();
    sys.set_guest_app(Box::new(|_, msg| {
        vec![Reply {
            dst_ip: msg.src_ip,
            dst_port: msg.src_port,
            src_port: msg.dst_port,
            payload: msg.payload.clone(),
            cost: Nanos::from_micros(1),
        }]
    }));
    // Enough traffic that one cycle (~15 ms wall) spans several OS
    // scheduler quanta: per-cycle noise then averages out instead of
    // landing entirely on one side of a disabled/enabled pair.
    for i in 0..4096u64 {
        sys.send_udp_at(
            Nanos::from_micros(10 + 20 * (i / 64)),
            Side::Client,
            addrs::GUEST,
            7777,
            1200 + (i % 64) as u16,
            vec![i as u8; 1400],
        );
    }
    let start = std::time::Instant::now();
    sys.run_to_quiescence();
    let wall = start.elapsed();
    kite_prof::disable();
    kite_prof::reset();
    wall
}

/// The `mechanisms/prof_overhead` row: wall time of the echo scenario
/// with the profiler disabled vs enabled. Runs back-to-back
/// disabled/enabled pairs and reports the *median* paired overhead:
/// scheduling noise on a shared VM comes in multi-millisecond bursts
/// that can swallow several iterations, and the median discards those
/// outlier pairs without the systematic low bias a min would have.
/// `scripts/verify.sh` gates `overhead_percent < 10`.
pub fn prof_overhead_snapshot() -> MetricsSnapshot {
    let _warmup = echo_cycle(false);
    let _warmup = echo_cycle(true);
    let mut disabled = u64::MAX;
    let mut enabled = u64::MAX;
    let mut ratios = Vec::new();
    for _ in 0..15 {
        let d = echo_cycle(false).as_nanos() as u64;
        let e = echo_cycle(true).as_nanos() as u64;
        disabled = disabled.min(d);
        enabled = enabled.min(e);
        ratios.push(100.0 * (e as f64 - d as f64) / d as f64);
    }
    ratios.sort_by(|a, b| a.total_cmp(b));
    // A noisy disabled half can drive a pair's ratio negative; clamp —
    // the profiler cannot have negative cost.
    let overhead = ratios[ratios.len() / 2].max(0.0);
    let mut snap = MetricsSnapshot::new("mechanisms/prof_overhead");
    snap.push_int("disabled_ns", "ns", disabled);
    snap.push_int("enabled_ns", "ns", enabled);
    snap.push_float("overhead_percent", "percent", overhead);
    snap.mark_wall();
    snap
}

/// The queue-scaling ablation rows (`netback_queues_{1,2,4,8}` and
/// `blkback_rings_{1,2,4}`). Asserts the headline scaling claim: four
/// netback queues on a 4-vCPU driver domain beat the single queue.
pub fn queue_scaling_snapshots() -> Vec<MetricsSnapshot> {
    let mut snaps: Vec<MetricsSnapshot> = [1u32, 2, 4, 8]
        .iter()
        .map(|&q| netback_queue_snapshot(q, 7))
        .collect();
    let tput = tput_of;
    assert!(
        tput(&snaps[2]) > tput(&snaps[0]),
        "4 queues must out-drain 1 queue"
    );
    let base = snaps.len();
    snaps.extend([1u32, 2, 4].iter().map(|&r| blkback_ring_snapshot(r, 7)));
    let (r1, r2, r4) = (
        tput(&snaps[base]),
        tput(&snaps[base + 1]),
        tput(&snaps[base + 2]),
    );
    assert!(
        r4 > r2 && r2 > r1,
        "blkback rings must scale monotonically: rings_1={r1:.0} rings_2={r2:.0} rings_4={r4:.0} mbps"
    );
    snaps
}

/// Runs the segmentation-offload / wire-profile ablation workload:
/// guest→client bulk streaming of 64 flows through a driver domain with
/// one vCPU per queue, on an explicit [`LineRate`] wire. `msg_len`
/// picks the regime: super-frame-sized messages expose the per-packet
/// amortization GSO buys; MTU-sized ones keep the drain CPU-bound so
/// queue scaling shows. With `bidir` every flow also carries the
/// mirror-image client→guest stream, so each queue's vCPU pays both the
/// pusher and the soft_start path — the regime where the vCPU count,
/// not the wire, sets the slope.
pub fn netback_offload_cycle(
    gso: bool,
    wire: LineRate,
    queues: u32,
    msg_len: usize,
    msgs: u64,
    bidir: bool,
    seed: u64,
) -> NetSystem {
    let mut sys = SystemConfig::new(BackendOs::Kite, seed)
        .queues(queues)
        .gso(gso)
        .wire_profile(wire)
        .build_net();
    for i in 0..msgs {
        // 64 flows distinguished by source port, bursting faster than
        // one vCPU drains.
        let t = Nanos::from_micros(10 + 20 * (i / 64));
        let flow = 1200 + (i % 64) as u16;
        sys.send_udp_at(
            t,
            Side::Guest,
            addrs::CLIENT,
            9999,
            flow,
            vec![i as u8; msg_len],
        );
        if bidir {
            sys.send_udp_at(
                t,
                Side::Client,
                addrs::GUEST,
                flow,
                9999,
                vec![i as u8; msg_len],
            );
        }
    }
    sys.run_to_quiescence();
    sys
}

/// One offload-ablation row: goodput plus the chain counters that prove
/// (or disprove) that super-frames carried the bytes.
pub fn offload_snapshot(name: impl Into<String>, sys: &NetSystem) -> MetricsSnapshot {
    let elapsed = sys.now();
    let stats = sys.netback_stats();
    let mut snap = MetricsSnapshot::new(name);
    snap.push_int("queues", "count", sys.queue_count() as u64);
    snap.push_int("gso_negotiated", "bool", u64::from(sys.gso_negotiated()));
    snap.push_int(
        "wire_gbps",
        "gbps",
        sys.wire().map_or(10, |r| r.bps() / 1_000_000_000),
    );
    snap.push_int("tx_packets", "count", stats.tx_packets);
    snap.push_int("tx_bytes", "bytes", stats.tx_bytes);
    snap.push_int("rx_bytes", "bytes", stats.rx_bytes);
    snap.push_int("gso_tx_frames", "count", stats.gso_tx_frames);
    snap.push_int("gso_tx_segs", "count", stats.gso_tx_segs);
    snap.push_int("lro_rx_frames", "count", stats.lro_rx_frames);
    snap.push_int("elapsed", "ns", elapsed.as_nanos());
    snap.push_float(
        "throughput_mbps",
        "mbps",
        stats.tx_bytes as f64 * 8.0 / elapsed.as_secs_f64() / 1e6,
    );
    snap.push_int("drops", "count", sys.metrics.drops);
    snap
}

fn tput_of(s: &MetricsSnapshot) -> f64 {
    s.metrics
        .iter()
        .find(|m| m.name == "throughput_mbps")
        .map(|m| match m.value {
            kite_trace::metrics::MetricValue::Int(v) => v as f64,
            kite_trace::metrics::MetricValue::Float(v) => v,
        })
        .unwrap_or(0.0)
}

/// The segmentation-offload and wire-profile ablation rows
/// (`netback_gso_{off,on}`, `netback_wire_{10,25,100}g`,
/// `netback_wire_25g_queues_{4,8}`). Asserts the two headline claims in
/// the report layer — `verify.sh` re-checks both from the shipped JSON:
///
/// * GSO at a single queue at least doubles goodput (per-packet costs
///   amortize over ~42-segment super-frames);
/// * 8 netback queues on the 25GbE profile clear the 10GbE ceiling,
///   and beat 4 queues while doing it.
pub fn offload_snapshots() -> Vec<MetricsSnapshot> {
    // GSO pair: one queue, 100GbE so the wire is never the limiter, and
    // super-frame-sized messages so the off-run pays per-MTU-frame cost.
    let off = offload_snapshot(
        "mechanisms/netback_gso_off",
        &netback_offload_cycle(false, LineRate::Gbe100, 1, 48 * 1024, 256, false, 7),
    );
    let on = offload_snapshot(
        "mechanisms/netback_gso_on",
        &netback_offload_cycle(true, LineRate::Gbe100, 1, 48 * 1024, 256, false, 7),
    );
    assert!(
        tput_of(&on) >= 2.0 * tput_of(&off),
        "GSO must at least double single-queue goodput: off={:.0} on={:.0} mbps",
        tput_of(&off),
        tput_of(&on),
    );
    let mut snaps = vec![off, on];

    // Wire profiles: 8 queues, offload on, bulk — goodput rises with
    // the line rate because nothing else is the bottleneck.
    for (rate, label) in [
        (LineRate::Gbe10, "10g"),
        (LineRate::Gbe25, "25g"),
        (LineRate::Gbe100, "100g"),
    ] {
        snaps.push(offload_snapshot(
            format!("mechanisms/netback_wire_{label}"),
            &netback_offload_cycle(true, rate, 8, 48 * 1024, 256, false, 7),
        ));
    }

    // 25GbE queue scaling: bidirectional MTU-sized frames with offload
    // off keep every queue vCPU busy on both the pusher and soft_start
    // paths — CPU-bound, so the vCPU count, not the wire, sets the
    // slope, and 8 queues clear what used to be the 10GbE ceiling.
    let q4 = offload_snapshot(
        "mechanisms/netback_wire_25g_queues_4",
        &netback_offload_cycle(false, LineRate::Gbe25, 4, 1400, 512, true, 7),
    );
    let q8 = offload_snapshot(
        "mechanisms/netback_wire_25g_queues_8",
        &netback_offload_cycle(false, LineRate::Gbe25, 8, 1400, 512, true, 7),
    );
    assert!(
        tput_of(&q8) > tput_of(&q4),
        "8 queues must out-drain 4 on 25GbE: q4={:.0} q8={:.0} mbps",
        tput_of(&q4),
        tput_of(&q8),
    );
    assert!(
        tput_of(&q8) > 10_000.0,
        "8 queues on 25GbE must break the 10GbE ceiling: {:.0} mbps",
        tput_of(&q8),
    );
    snaps.push(q4);
    snaps.push(q8);
    snaps
}

/// The `latency/figure7_<os>` rows: mean and p50/p99/p99.9 (ms) of the
/// three Figure 7 workloads. Everything is virtual-time derived, so
/// the rows join `repro --json`'s byte-determinism surface.
pub fn latency_snapshots() -> Vec<MetricsSnapshot> {
    [BackendOs::Kite, BackendOs::Linux]
        .iter()
        .map(|&os| {
            let r = kite_workloads::latency::figure7(os, 11);
            let mut snap =
                MetricsSnapshot::new(format!("latency/figure7_{}", os.name().to_lowercase()));
            for (wl, w) in [
                ("ping", r.ping),
                ("netperf", r.netperf),
                ("memtier", r.memtier),
            ] {
                snap.push_float(format!("{wl}_mean_ms"), "ms", w.mean_ms);
                snap.push_float(format!("{wl}_p50_ms"), "ms", w.p50_ms);
                snap.push_float(format!("{wl}_p99_ms"), "ms", w.p99_ms);
                snap.push_float(format!("{wl}_p999_ms"), "ms", w.p999_ms);
            }
            snap
        })
        .collect()
}

/// The `repro --json` result set: mechanisms + recovery (oracle and
/// watchdog detection) + queue scaling + ablation.
pub fn standard_snapshots() -> Vec<MetricsSnapshot> {
    let mut snaps = vec![
        grant_copy_snapshot(),
        recovery_snapshot(BackendOs::Kite, 11),
        recovery_snapshot(BackendOs::Linux, 11),
        recovery_snapshot_of(&recovery_cycle_with(
            BackendOs::Kite,
            11,
            DetectionMode::Watchdog,
        )),
        recovery_snapshot_of(&recovery_cycle_with(
            BackendOs::Linux,
            11,
            DetectionMode::Watchdog,
        )),
    ];
    snaps.extend(queue_scaling_snapshots());
    snaps.extend(offload_snapshots());
    snaps.extend(latency_snapshots());
    snaps.push(ablation_snapshot());
    snaps.push(scheduler_throughput_snapshot(SchedulerKind::Heap));
    snaps.push(scheduler_throughput_snapshot(SchedulerKind::Wheel));
    snaps.push(prof_phase_snapshot());
    snaps.push(prof_overhead_snapshot());
    snaps
}

/// The `repro top` report: a deterministic watchdog scenario snapshotted
/// at fixed virtual times through a driver-domain crash — healthy
/// steady state, mid-detection (the monitor is suspicious), and after
/// recovery (replacement domain up, dead incarnation still listed).
///
/// Everything is virtual-time driven, so the same build produces
/// byte-identical output on every run; `scripts/verify.sh` diffs two
/// runs to prove it.
pub fn kitetop_report() -> String {
    let mut sys = NetSystem::new(BackendOs::Kite, 11);
    sys.enable_watchdog(MonitorConfig::default());
    // Trace every echo so the P99_US column has per-domain data by the
    // first snapshot; the pings all complete before the 2 s kill.
    sys.enable_req_tracing(1);
    for i in 0..16u16 {
        sys.ping_at(Nanos::from_millis(50 * (u64::from(i) + 1)), i);
    }
    for i in 0..120u64 {
        sys.send_udp_at(
            Nanos::from_millis(1 + 250 * i),
            Side::Guest,
            addrs::CLIENT,
            9999,
            1234,
            vec![i as u8; 1400],
        );
    }
    sys.inject_faults(FaultPlan::seeded(11).with_kill_at(Nanos::from_secs(2)));
    let mut out = String::new();
    // Probes run every 500 ms and declare failure after 3 misses: 3.2 s
    // lands mid-detection, between the second and third missed probe.
    for stop in [Nanos::from_secs(1), Nanos::from_millis(3_200)] {
        sys.run_until(stop);
        out.push_str(&render_top(&sys.top_snapshot()));
        out.push('\n');
    }
    sys.run_to_quiescence();
    out.push_str(&render_top(&sys.top_snapshot()));
    out
}

/// Virtual nanoseconds as fractional microseconds for report text.
fn lat_us(n: Nanos) -> f64 {
    n.as_nanos() as f64 / 1e3
}

/// Renders one scenario's per-stage latency table and its two worst
/// request waterfalls from the run's request tracer.
///
/// Stage durations telescope (each inter-stamp gap books to the later
/// stamp's stage), so a waterfall's `+delta` column sums exactly to the
/// request's end-to-end latency, and the per-stage histograms partition
/// the END_TO_END distribution with no gaps or double counting.
fn lat_section(name: &str, req: &kite_trace::ReqTracer) -> String {
    use std::fmt::Write as _;

    use kite_trace::{ReqRecord, Stage};
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== lat: {name} — {} sampled of {} injected, {} completed ==",
        req.sampled(),
        req.seen(),
        req.completed_len(),
    );
    let _ = writeln!(
        out,
        "{:<14} {:>7} {:>10} {:>10} {:>10}",
        "STAGE", "COUNT", "P50_US", "P99_US", "P999_US"
    );
    let row = |out: &mut String, label: &str, h: &kite_sim::Histogram| {
        let qs = h.quantiles(&[0.5, 0.99, 0.999]);
        let _ = writeln!(
            out,
            "{:<14} {:>7} {:>10.3} {:>10.3} {:>10.3}",
            label,
            h.count(),
            lat_us(qs[0]),
            lat_us(qs[1]),
            lat_us(qs[2]),
        );
    };
    for &stage in &Stage::ALL {
        if let Some(h) = req.stage_hist(stage) {
            if h.count() > 0 {
                row(&mut out, stage.name(), h);
            }
        }
    }
    if let Some(h) = req.e2e_hist() {
        row(&mut out, "END_TO_END", h);
    }
    // The two slowest sampled requests, stamp by stamp. Ties break by
    // id so the pick is deterministic.
    let mut worst: Vec<&ReqRecord> = req.completed().collect();
    worst.sort_by_key(|r| (std::cmp::Reverse(r.e2e()), r.id));
    for rec in worst.iter().take(2) {
        let _ = writeln!(
            out,
            "-- waterfall: req {} e2e {:.3} us --",
            rec.id,
            lat_us(rec.e2e()),
        );
        let t0 = rec.stamps.first().map_or(Nanos::ZERO, |s| s.at);
        let mut prev = t0;
        for s in &rec.stamps {
            let q = s.qid.map_or_else(|| "-".into(), |q| q.to_string());
            let _ = writeln!(
                out,
                "  +{:>9.3} us  {:<14} dom {:<2} q {:<2} (+{:.3} us)",
                lat_us(s.at.saturating_sub(t0)),
                s.stage.name(),
                s.dom,
                q,
                lat_us(s.at.saturating_sub(prev)),
            );
            prev = s.at;
        }
    }
    out
}

/// The `repro lat` report: per-stage latency waterfalls from end-to-end
/// request tracing on the two canonical scenarios — the network echo
/// path (256 pings through a Kite driver domain) and the 4-ring
/// storage path (the `blkback_rings_4` workload). Each scenario also
/// exports its flow-annotated Chrome trace and validates it (flow
/// begin/end pairing included) before reporting. Everything is
/// virtual-time derived: two runs print identical bytes.
pub fn lat_report() -> String {
    let mut out = String::new();

    // Network echo: every 4th of 256 pings carries a ReqId.
    let mut net = SystemConfig::new(BackendOs::Kite, 11)
        .tracing(1 << 16)
        .req_tracing(4)
        .build_net();
    for i in 0..256u16 {
        net.ping_at(Nanos::from_millis(1 + 2 * u64::from(i)), i);
    }
    net.run_to_quiescence();
    out.push_str(&lat_section("net_echo", &net.hv.req));
    let doc = net.hv.export_chrome_trace();
    let events = kite_trace::chrome::validate(&doc).expect("net echo trace must validate");
    out.push_str(&format!("flow validation: OK ({events} events)\n\n"));

    // 4-ring storage: the blkback_rings_4 workload (four interleaved
    // sequential write streams on a low-penalty flash profile), every
    // 3rd I/O sampled — 3 is coprime to the 4-way ring round-robin, so
    // the samples visit every ring instead of aliasing onto one.
    let mut stor = SystemConfig::new(BackendOs::Kite, 7)
        .queue_mode(QueueMode::Multi(4))
        .nvme_profile(
            kite_devices::NvmeProfile::default().with_random_penalty(Nanos::from_micros(2)),
        )
        .tracing(1 << 16)
        .req_tracing(3)
        .build_stor();
    const CHUNK: usize = 8 * 1024;
    const STREAMS: u64 = 4;
    const PER_STREAM: u64 = 64;
    const REGION_SECTORS: u64 = 1 << 20;
    let mut t = Nanos::from_micros(100);
    for i in 0..(STREAMS * PER_STREAM) {
        let stream = i % STREAMS;
        let idx = i / STREAMS;
        stor.submit_at(
            t,
            IoOp {
                tag: i,
                kind: IoKind::Write {
                    sector: stream * REGION_SECTORS + idx * (CHUNK / 512) as u64,
                    data: vec![0x5a; CHUNK],
                },
            },
        );
        t += Nanos::from_micros(2);
    }
    stor.run_to_quiescence();
    out.push_str(&lat_section("storage_rings_4", &stor.hv.req));
    let doc = stor.hv.export_chrome_trace();
    let events = kite_trace::chrome::validate(&doc).expect("storage trace must validate");
    out.push_str(&format!("flow validation: OK ({events} events)\n"));
    out
}
