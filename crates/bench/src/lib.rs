//! Benchmark harness: the `repro` binary regenerates every paper table and
//! figure (see [`experiments`]); the Criterion benches in `benches/` time
//! the hot mechanisms and run scaled versions of each figure.

pub mod experiments;
pub mod report;
