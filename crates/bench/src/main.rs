//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! repro --all            # everything (several minutes)
//! repro fig7 fig11       # selected experiments
//! repro --list           # what's available
//! repro --json out.json  # machine-readable mechanisms/recovery/ablation results
//! repro top              # kitetop: per-domain health through a crash cycle
//! repro prof             # profiled 4-queue drain: self-time table + stacks
//! repro lat              # per-stage latency waterfalls (echo + 4-ring storage)
//! ```
//!
//! `repro prof` options: `--collapsed <path>` writes the collapsed
//! stacks for flamegraph tooling, `--series-csv <path>` /
//! `--series-json <path>` write the sampler time series.
//!
//! Each experiment prints the paper's reported values alongside this
//! reproduction's measurements. EXPERIMENTS.md is this program's output
//! with commentary.

use kite_bench::experiments::{all_experiments, Experiment};
use kite_bench::report;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("top") {
        print!("{}", report::kitetop_report());
        return;
    }
    if args.first().map(String::as_str) == Some("lat") {
        print!("{}", report::lat_report());
        return;
    }
    if args.first().map(String::as_str) == Some("prof") {
        run_prof(&args[1..]);
        return;
    }
    if let Some(i) = args.iter().position(|a| a == "--json") {
        let Some(path) = args.get(i + 1) else {
            eprintln!("--json needs an output path");
            std::process::exit(2);
        };
        let snaps = report::standard_snapshots();
        report::print_snapshots(&snaps);
        match report::write_json(path, &snaps) {
            Ok(rows) => println!("wrote {rows} result rows to {path}"),
            Err(e) => {
                eprintln!("failed to write {path}: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    let exps = all_experiments();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: repro [--all | --list | --json <path> | top | lat | <id>...]");
        eprintln!("experiments:");
        for e in &exps {
            eprintln!("  {:8} {}", e.id, e.title);
        }
        std::process::exit(if args.is_empty() { 2 } else { 0 });
    }
    if args.iter().any(|a| a == "--list") {
        for e in &exps {
            println!("{:8} {}", e.id, e.title);
        }
        return;
    }
    let run_all = args.iter().any(|a| a == "--all");
    let selected: Vec<&Experiment> = exps
        .iter()
        .filter(|e| run_all || args.iter().any(|a| a == e.id))
        .collect();
    if selected.is_empty() {
        eprintln!("no matching experiments; try --list");
        std::process::exit(2);
    }
    for e in selected {
        println!("==== {} — {} ====", e.id, e.title);
        (e.run)();
        println!();
    }
}

/// `repro prof [--collapsed <path>] [--series-csv <path>] [--series-json <path>]`
///
/// Prints the per-phase self-time table and the collapsed stacks from
/// the profiled 4-queue netback drain; the optional paths export the
/// collapsed stacks (for `flamegraph.pl` / `inferno-flamegraph`) and
/// the sampler's deterministic time series.
fn run_prof(args: &[String]) {
    let path_after = |flag: &str| -> Option<&String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
    };
    let run = report::prof_run();
    println!("== per-phase self time (wall clock, 4-queue netback drain) ==");
    print!("{}", run.table);
    println!();
    println!("== collapsed stacks (self ns; pipe into flamegraph.pl) ==");
    print!("{}", run.collapsed);
    for (flag, content) in [
        ("--collapsed", &run.collapsed),
        ("--series-csv", &run.series_csv),
        ("--series-json", &run.series_json),
    ] {
        if let Some(path) = path_after(flag) {
            if let Err(e) = std::fs::write(path, content) {
                eprintln!("failed to write {path}: {e}");
                std::process::exit(1);
            }
            eprintln!("wrote {path}");
        }
    }
}
