//! Criterion bench for Figure 12 (SysBench file I/O).
//!
//! Runs a scaled version of the figure's workload for both driver-domain
//! OSs; the full-size regeneration lives in the `repro` binary.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12_fileio");
    g.sample_size(10);
    for os in kite_system::BackendOs::both() {
        g.bench_function(os.name(), |b| {
            b.iter(|| black_box(kite_workloads::fileio::run(os, 10, 256 * 1024, 80, 1).mbps))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
