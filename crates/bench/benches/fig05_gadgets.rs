//! Criterion bench for Figure 5 (ROP gadget scan).
//!
//! Runs a scaled version of the figure's workload for both driver-domain
//! OSs; the full-size regeneration lives in the `repro` binary.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig05_gadgets");
    g.sample_size(10);
    g.bench_function("scan_kite_image_sample", |b| {
        let profiles = kite_security::figure5_profiles();
        b.iter(|| black_box(kite_security::analyze(&profiles[0], 42).total()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
