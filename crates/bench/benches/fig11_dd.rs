//! Criterion bench for Figure 11 (dd).
//!
//! Runs a scaled version of the figure's workload for both driver-domain
//! OSs; the full-size regeneration lives in the `repro` binary.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11_dd");
    g.sample_size(10);
    for os in kite_system::BackendOs::both() {
        g.bench_function(os.name(), |b| {
            b.iter(|| black_box(kite_workloads::dd::run(os, true, 16 << 20, 1).mbps))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
