//! Criterion bench for Figure 4c (boot time).
//!
//! Runs a scaled version of the figure's workload for both driver-domain
//! OSs; the full-size regeneration lives in the `repro` binary.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig04_boot");
    g.sample_size(10);
    g.bench_function("kite_vs_ubuntu_model", |b| {
        let mut rng = kite_sim::Pcg::seeded(1);
        b.iter(|| {
            let k = kite_rumprun::kite_boot().sample(&mut rng);
            let l = kite_linux::ubuntu_boot().sample(&mut rng);
            black_box((k, l))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
