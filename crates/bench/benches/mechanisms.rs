//! Microbenchmarks of the hot mechanisms: ring push/consume, grant copy,
//! bridge forwarding, xenstore, the gadget scanner's decoder.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use kite_bench::report;
use kite_net::ether::ETH_FRAME_MAX;
use kite_net::{Bridge, MacAddr};
use kite_security::gadgets::decode::decode;
use kite_sim::Nanos;
use kite_xen::netif::{NetifTxRequest, NetifTxResponse};
use kite_xen::ring::{BackRing, FrontRing};
use kite_xen::{DomainKind, GrantRef, Hypervisor};

fn bench_ring(c: &mut Criterion) {
    c.bench_function("ring_push_consume_roundtrip", |b| {
        let mut page = vec![0u8; 4096];
        let mut f: FrontRing<NetifTxRequest, NetifTxResponse> = FrontRing::init(&mut page);
        let mut back: BackRing<NetifTxRequest, NetifTxResponse> = BackRing::attach();
        let req = NetifTxRequest {
            gref: GrantRef(7),
            offset: 0,
            flags: 0,
            id: 1,
            size: ETH_FRAME_MAX as u16,
        };
        b.iter(|| {
            f.push_request(&mut page, black_box(&req)).unwrap();
            f.push_requests(&mut page);
            let r = back.consume_request(&page).unwrap().unwrap();
            back.push_response(
                &mut page,
                &NetifTxResponse {
                    id: r.id,
                    status: 0,
                },
            )
            .unwrap();
            back.push_responses(&mut page);
            f.consume_response(&page).unwrap().unwrap()
        });
    });
}

fn bench_grant_copy(c: &mut Criterion) {
    c.bench_function("grant_copy_4k", |b| {
        let mut hv = Hypervisor::new();
        hv.create_domain("Domain-0", DomainKind::Dom0, 1024, 4);
        let dd = hv.create_domain("dd", DomainKind::Driver, 256, 1);
        let gu = hv.create_domain("guest", DomainKind::Guest, 256, 2);
        let src = hv.alloc_page(gu).unwrap();
        let dst = hv.alloc_page(dd).unwrap();
        let gref = hv.grant_access(gu, dd, src, true).unwrap();
        b.iter(|| {
            hv.grant_copy(
                dd,
                kite_xen::CopySide::Grant {
                    granter: gu,
                    gref,
                    offset: 0,
                },
                kite_xen::CopySide::Local {
                    page: dst,
                    offset: 0,
                },
                black_box(4096),
            )
            .unwrap()
        });
    });
}

fn bench_grant_copy_batch(c: &mut Criterion) {
    // Host time of issuing one 32-op batch vs. 32 single-op hypercalls,
    // plus the virtual (modelled) cost delta — the batched path must be
    // strictly cheaper for any multi-op drain.
    let mut hv = Hypervisor::new();
    hv.create_domain("Domain-0", DomainKind::Dom0, 1024, 4);
    let dd = hv.create_domain("dd", DomainKind::Driver, 256, 1);
    let gu = hv.create_domain("guest", DomainKind::Guest, 256, 2);
    const NOPS: usize = 32;
    const LEN: usize = ETH_FRAME_MAX;
    let mut ops = Vec::with_capacity(NOPS);
    for _ in 0..NOPS {
        let src = hv.alloc_page(gu).unwrap();
        let dst = hv.alloc_page(dd).unwrap();
        let gref = hv.grant_access(gu, dd, src, true).unwrap();
        ops.push(kite_xen::GrantCopyOp {
            src: kite_xen::CopySide::Grant {
                granter: gu,
                gref,
                offset: 0,
            },
            dst: kite_xen::CopySide::Local {
                page: dst,
                offset: 0,
            },
            len: LEN,
        });
    }
    let batched_cost = hv
        .grant_copy_ops(dd, &ops, kite_xen::CopyMode::Batched)
        .cost;
    let single_cost = hv
        .grant_copy_ops(dd, &ops, kite_xen::CopyMode::SingleOp)
        .cost;
    assert!(
        batched_cost < single_cost,
        "batched ({batched_cost:?}) must undercut single-op ({single_cost:?})"
    );
    // Shared reporting path: same values land in `repro --json`.
    report::print_snapshots(&[report::grant_copy_snapshot()]);
    c.bench_function(&format!("grant_copy_batched_32x{LEN}"), |b| {
        b.iter(|| black_box(hv.grant_copy_ops(dd, &ops, kite_xen::CopyMode::Batched)))
    });
    c.bench_function(&format!("grant_copy_single_op_32x{LEN}"), |b| {
        b.iter(|| black_box(hv.grant_copy_ops(dd, &ops, kite_xen::CopyMode::SingleOp)))
    });
}

fn bench_recovery(c: &mut Criterion) {
    // Virtual-time headline (paper Fig 10): crash-to-first-byte through
    // a full driver-domain reboot, per backend OS.
    let kite = report::recovery_cycle(kite_system::BackendOs::Kite, 11);
    let linux = report::recovery_cycle(kite_system::BackendOs::Linux, 11);
    let kite_wd = report::recovery_cycle_with(
        kite_system::BackendOs::Kite,
        11,
        kite_system::DetectionMode::Watchdog,
    );
    report::print_snapshots(&[
        report::recovery_snapshot_of(&kite),
        report::recovery_snapshot_of(&linux),
        report::recovery_snapshot_of(&kite_wd),
    ]);
    for sys in [&kite, &linux, &kite_wd] {
        sys.recovery.crash_to_first_byte().expect("service resumed");
    }
    assert!(
        kite.recovery.crash_to_first_byte() < linux.recovery.crash_to_first_byte(),
        "a rumprun driver domain must recover strictly faster than Linux"
    );
    // The oracle detects for free; the heartbeat watchdog pays a real,
    // bounded detection latency on top of the same reboot.
    assert_eq!(kite.recovery.detect_latency(), Some(Nanos::ZERO));
    let wd_detect = kite_wd.recovery.detect_latency().expect("detected");
    assert!(wd_detect > Nanos::ZERO);
    c.bench_function("recovery_cycle_kite_sim", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(report::recovery_cycle(kite_system::BackendOs::Kite, seed).recovery)
        });
    });
}

fn bench_bridge(c: &mut Criterion) {
    c.bench_function("bridge_unicast_forward", |b| {
        let mut br = Bridge::new("bridge0");
        let p0 = br.add_port("ixg0");
        let p1 = br.add_port("vif0");
        br.input(p1, MacAddr::local(1), MacAddr::BROADCAST, Nanos::ZERO);
        b.iter(|| {
            br.input(
                p0,
                MacAddr::local(2),
                black_box(MacAddr::local(1)),
                Nanos(1),
            )
        });
    });
}

fn bench_xenstore(c: &mut Criterion) {
    c.bench_function("xenstore_write_read", |b| {
        let mut hv = Hypervisor::new();
        let d0 = hv.create_domain("Domain-0", DomainKind::Dom0, 1024, 4);
        let mut i = 0u64;
        b.iter(|| {
            let path = format!("/bench/{}", i % 64);
            i += 1;
            hv.store.write(d0, None, &path, "v").unwrap();
            hv.store.read(d0, None, &path).unwrap()
        });
    });
}

fn bench_decoder(c: &mut Criterion) {
    c.bench_function("x86_decode", |b| {
        let insns: Vec<Vec<u8>> = vec![
            vec![0x48, 0x89, 0xd8],
            vec![0x48, 0x8b, 0x05, 1, 2, 3, 4],
            vec![0xe8, 0, 0, 0, 0],
            vec![0xf3, 0x0f, 0x58, 0xc1],
        ];
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % insns.len();
            decode(black_box(&insns[i]))
        });
    });
}

criterion_group!(
    benches,
    bench_ring,
    bench_grant_copy,
    bench_grant_copy_batch,
    bench_recovery,
    bench_bridge,
    bench_xenstore,
    bench_decoder
);
criterion_main!(benches);
