//! Criterion bench for §5.5 (perfdhcp).
//!
//! Runs a scaled version of the figure's workload for both driver-domain
//! OSs; the full-size regeneration lives in the `repro` binary.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig17_dhcp");
    g.sample_size(10);
    for d in [
        kite_workloads::perfdhcp::DaemonOs::Rumprun,
        kite_workloads::perfdhcp::DaemonOs::Linux,
    ] {
        g.bench_function(d.name(), |b| {
            b.iter(|| black_box(kite_workloads::perfdhcp::run(d, 60, 400, 1).discover_offer_ms))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
