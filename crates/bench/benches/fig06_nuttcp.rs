//! Criterion bench for Figure 6 (nuttcp).
//!
//! Runs a scaled version of the figure's workload for both driver-domain
//! OSs; the full-size regeneration lives in the `repro` binary.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig06_nuttcp");
    g.sample_size(10);
    for os in kite_system::BackendOs::both() {
        g.bench_function(os.name(), |b| {
            b.iter(|| {
                let params = kite_workloads::nuttcp::NuttcpParams {
                    duration: kite_sim::Nanos::from_millis(20),
                    ..Default::default()
                };
                black_box(kite_workloads::nuttcp::run(os, &params, 1).goodput_gbps)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
