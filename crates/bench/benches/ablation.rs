//! Ablation bench: the individual contribution of blkback's three storage
//! optimizations (§3.3/§4.4) — batching, persistent grants, indirect
//! segments — on a fixed sequential-write workload.
//!
//! Criterion times the *host* execution of each simulation here (useful
//! as a regression canary for the mechanism code). The figure-level
//! ablation result — the *virtual* elapsed time and hypercall counts per
//! variant — is printed by `cargo run --release --example
//! storage_domain`, where disabling persistent grants + batching doubles
//! virtual elapsed time and multiplies grant maps 8x.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use kite_core::BlkbackTuning;
use kite_sim::Nanos;
use kite_system::{BackendOs, IoKind, IoOp, StorSystem};

/// Runs 8 MiB of 128 KiB writes; returns elapsed virtual time in ns.
fn run(tuning: BlkbackTuning) -> u64 {
    let mut sys = StorSystem::with_tuning(BackendOs::Kite, 1, tuning);
    const CHUNK: usize = 128 * 1024;
    let mut t = Nanos::from_micros(100);
    for i in 0..64u64 {
        sys.submit_at(
            t,
            IoOp {
                tag: i,
                kind: IoKind::Write {
                    sector: i * (CHUNK / 512) as u64,
                    data: vec![0x5a; CHUNK],
                },
            },
        );
        t += Nanos::from_micros(40);
    }
    sys.run_to_quiescence();
    sys.now().as_nanos()
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("blkback_ablation");
    g.sample_size(10);
    let variants = [
        ("all_on", BlkbackTuning::default()),
        (
            "no_persistent_grants",
            BlkbackTuning {
                persistent_grants: false,
                persistent_cap: 0,
                ..BlkbackTuning::default()
            },
        ),
        (
            "no_batching",
            BlkbackTuning {
                batching: false,
                ..BlkbackTuning::default()
            },
        ),
        (
            "no_indirect",
            BlkbackTuning {
                indirect_segments: false,
                ..BlkbackTuning::default()
            },
        ),
        (
            "all_off",
            BlkbackTuning {
                batching: false,
                persistent_grants: false,
                indirect_segments: false,
                persistent_cap: 0,
            },
        ),
    ];
    for (name, tuning) in variants {
        g.bench_function(name, |b| b.iter(|| black_box(run(tuning))));
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
