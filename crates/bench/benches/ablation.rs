//! Ablation bench: the individual contribution of blkback's storage
//! optimizations (§3.3/§4.4) — batching, persistent grants, indirect
//! segments, and the grant-copy data path (batched vs. one hypercall
//! per op) — on a fixed sequential-write workload.
//!
//! Criterion times the *host* execution of each simulation here (useful
//! as a regression canary for the mechanism code). The figure-level
//! ablation result — the *virtual* elapsed time and hypercall counts per
//! variant — is printed by `cargo run --release --example
//! storage_domain`, where disabling persistent grants + batching doubles
//! virtual elapsed time and multiplies grant maps 8x.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use kite_core::BlkbackTuning;
use kite_sim::Nanos;
use kite_system::{BackendOs, IoKind, IoOp, SystemConfig};
use kite_xen::CopyMode;

/// Runs 8 MiB of 128 KiB writes; returns elapsed virtual time in ns.
fn run(tuning: BlkbackTuning, mode: CopyMode) -> u64 {
    let mut sys = SystemConfig::new(BackendOs::Kite, 1)
        .tuning(tuning)
        .copy_mode(mode)
        .build_stor();
    const CHUNK: usize = 128 * 1024;
    let mut t = Nanos::from_micros(100);
    for i in 0..64u64 {
        sys.submit_at(
            t,
            IoOp {
                tag: i,
                kind: IoKind::Write {
                    sector: i * (CHUNK / 512) as u64,
                    data: vec![0x5a; CHUNK],
                },
            },
        );
        t += Nanos::from_micros(40);
    }
    sys.run_to_quiescence();
    sys.now().as_nanos()
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("blkback_ablation");
    g.sample_size(10);
    let no_persistent = BlkbackTuning {
        persistent_grants: false,
        persistent_cap: 0,
        ..BlkbackTuning::default()
    };
    let variants = [
        ("all_on", BlkbackTuning::default(), CopyMode::Batched),
        // Map/unmap per segment (grant copies also disabled).
        (
            "no_persistent_grants_map",
            BlkbackTuning {
                grant_copy: false,
                ..no_persistent
            },
            CopyMode::Batched,
        ),
        // One GNTTABOP_copy per request's segment list.
        (
            "no_persistent_grants_copy_batched",
            no_persistent,
            CopyMode::Batched,
        ),
        // One hypercall per copy op — isolates the batching win.
        (
            "no_persistent_grants_copy_single_op",
            no_persistent,
            CopyMode::SingleOp,
        ),
        (
            "no_batching",
            BlkbackTuning {
                batching: false,
                ..BlkbackTuning::default()
            },
            CopyMode::Batched,
        ),
        (
            "no_indirect",
            BlkbackTuning {
                indirect_segments: false,
                ..BlkbackTuning::default()
            },
            CopyMode::Batched,
        ),
        (
            "all_off",
            BlkbackTuning {
                batching: false,
                persistent_grants: false,
                indirect_segments: false,
                persistent_cap: 0,
                grant_copy: false,
            },
            CopyMode::Batched,
        ),
    ];
    for (name, tuning, mode) in variants {
        g.bench_function(name, |b| b.iter(|| black_box(run(tuning, mode))));
    }
    // The figure-level result: virtual elapsed time per data path, via
    // the shared reporting path (same values land in `repro --json`).
    kite_bench::report::print_snapshots(&[kite_bench::report::ablation_snapshot()]);
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
