//! One builder for both systems: [`SystemConfig`].
//!
//! The constructor proliferation it replaces (`new`, `new_with_queues`,
//! `with_tuning`, `with_tuning_queues`, then `set_copy_mode` /
//! `enable_watchdog` / `enable_tracing` calls sprinkled after) collapses
//! into a single fluent description of a scenario that either
//! [`build_net`](SystemConfig::build_net) or
//! [`build_stor`](SystemConfig::build_stor) consumes. The old
//! constructors survive as thin wrappers, but new code should not use
//! them (clippy's `disallowed-methods` steers it here).

use kite_core::BlkbackTuning;
use kite_devices::{LineRate, NvmeProfile};
use kite_health::{MonitorConfig, SloConfig};
use kite_sim::{Nanos, SchedulerKind};
use kite_xen::{CopyMode, QueueMode};

use crate::netsys::{BackendOs, NetSystem};
use crate::storsys::StorSystem;

/// How the PV network path handles segmentation (network systems only).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum GsoMode {
    /// The pre-offload abstraction: the guest stack hands ~4KB chunks
    /// to the ring and no offload keys are negotiated. The default, and
    /// byte-identical to every scenario built before the GSO work.
    #[default]
    Legacy,
    /// Offload explicitly off: the guest segments to wire MTU in
    /// software, so every ring slot is one 1514-byte frame. The honest
    /// no-GSO baseline the ablation compares against.
    Off,
    /// Segmentation offload on: `feature-gso-tcpv4` is advertised and
    /// negotiated, the guest hands up to 64KB super-frames to a
    /// descriptor chain, and the NIC segments to wire MTU (TSO) on
    /// transmit / coalesces on receive (LRO).
    On,
}

/// Describes a full-system scenario; build it into a [`NetSystem`] or a
/// [`StorSystem`].
///
/// ```
/// use kite_system::{BackendOs, SystemConfig};
/// use kite_sim::SchedulerKind;
///
/// let sys = SystemConfig::new(BackendOs::Kite, 42)
///     .queues(4)
///     .scheduler(SchedulerKind::Heap)
///     .tracing(1 << 16)
///     .build_net();
/// assert_eq!(sys.queue_count(), 4);
/// ```
#[derive(Clone, Debug)]
pub struct SystemConfig {
    pub(crate) os: BackendOs,
    pub(crate) seed: u64,
    pub(crate) queue_mode: QueueMode,
    pub(crate) copy_mode: CopyMode,
    pub(crate) watchdog: Option<MonitorConfig>,
    pub(crate) slo: Option<SloConfig>,
    pub(crate) tracing: Option<usize>,
    pub(crate) req_tracing: Option<u64>,
    pub(crate) scheduler: SchedulerKind,
    pub(crate) tuning: BlkbackTuning,
    pub(crate) nvme_profile: Option<NvmeProfile>,
    pub(crate) nvme_max_io_queues: Option<u16>,
    pub(crate) profiling: bool,
    pub(crate) sampling: Option<(Nanos, usize)>,
    pub(crate) gso_mode: GsoMode,
    pub(crate) wire: Option<LineRate>,
}

impl SystemConfig {
    /// Starts a config with the two parameters every scenario needs: the
    /// driver-domain OS and the determinism seed. Everything else
    /// defaults to the paper's canonical single-queue setup.
    pub fn new(os: BackendOs, seed: u64) -> SystemConfig {
        SystemConfig {
            os,
            seed,
            queue_mode: QueueMode::Single,
            copy_mode: CopyMode::default(),
            watchdog: None,
            slo: None,
            tracing: None,
            req_tracing: None,
            scheduler: SchedulerKind::default(),
            tuning: BlkbackTuning::default(),
            nvme_profile: None,
            nvme_max_io_queues: None,
            profiling: false,
            sampling: None,
            gso_mode: GsoMode::default(),
            wire: None,
        }
    }

    /// Number of device queues: `1` is the legacy single-queue layout,
    /// `n > 1` negotiates `n` ring pairs on an `n`-vCPU driver domain.
    pub fn queues(mut self, n: u32) -> SystemConfig {
        self.queue_mode = if n <= 1 {
            QueueMode::Single
        } else {
            QueueMode::Multi(n)
        };
        self
    }

    /// Sets the queue layout explicitly (e.g. `QueueMode::Multi(1)`,
    /// which is behaviorally identical to `Single` but exercises the
    /// negotiation path).
    pub fn queue_mode(mut self, mode: QueueMode) -> SystemConfig {
        self.queue_mode = mode;
        self
    }

    /// Grant-copy strategy for the backend data path.
    pub fn copy_mode(mut self, mode: CopyMode) -> SystemConfig {
        self.copy_mode = mode;
        self
    }

    /// Enables the active watchdog (heartbeats + Dom0 probes) from time
    /// zero instead of the failure oracle.
    pub fn watchdog(mut self, cfg: MonitorConfig) -> SystemConfig {
        self.watchdog = Some(cfg);
        self
    }

    /// Sets the request-latency SLO the watchdog folds into its verdict.
    pub fn slo(mut self, cfg: SloConfig) -> SystemConfig {
        self.slo = Some(cfg);
        self
    }

    /// Enables structured tracing with an event-ring capacity of `cap`.
    pub fn tracing(mut self, cap: usize) -> SystemConfig {
        self.tracing = Some(cap);
        self
    }

    /// Enables per-request stage tracing: every `sample_every`-th
    /// injected request is tagged with a `ReqId` and followed through
    /// the stack (ring submit, backend fetch, grant copy, device
    /// residency, IRQ delivery), feeding per-stage latency histograms,
    /// the `repro lat` waterfalls and Perfetto flow arrows. Off by
    /// default; the disabled path allocates nothing.
    pub fn req_tracing(mut self, sample_every: u64) -> SystemConfig {
        self.req_tracing = Some(sample_every);
        self
    }

    /// Picks the scheduler backend (timer wheel by default; the binary
    /// heap is the equivalence oracle).
    pub fn scheduler(mut self, kind: SchedulerKind) -> SystemConfig {
        self.scheduler = kind;
        self
    }

    /// Blkback optimization switches (storage systems only).
    pub fn tuning(mut self, tuning: BlkbackTuning) -> SystemConfig {
        self.tuning = tuning;
        self
    }

    /// NVMe cost profile for the storage device (storage systems only).
    pub fn nvme_profile(mut self, profile: NvmeProfile) -> SystemConfig {
        self.nvme_profile = Some(profile);
        self
    }

    /// Caps the controller's I/O queue pairs (storage systems only).
    /// Rings beyond the cap share queues round-robin, like blk-mq
    /// mapping more contexts than hardware queues.
    pub fn nvme_max_io_queues(mut self, max: u16) -> SystemConfig {
        self.nvme_max_io_queues = Some(max);
        self
    }

    /// Segmentation offload for the network path: `gso(true)` negotiates
    /// `feature-gso-tcpv4` and moves 64KB super-frames over descriptor
    /// chains; `gso(false)` is the honest software-segmentation baseline
    /// (one MTU frame per ring slot). Scenarios that never call this keep
    /// [`GsoMode::Legacy`] — the pre-offload abstraction, byte-identical
    /// to historical runs.
    pub fn gso(mut self, on: bool) -> SystemConfig {
        self.gso_mode = if on { GsoMode::On } else { GsoMode::Off };
        self
    }

    /// Sets the segmentation mode explicitly (see [`GsoMode`]).
    pub fn gso_mode(mut self, mode: GsoMode) -> SystemConfig {
        self.gso_mode = mode;
        self
    }

    /// Wire speed for the NIC and the client link (network systems
    /// only): 10/25/100GbE profiles that also scale interrupt moderation.
    /// Unset keeps the paper's stock 82599 10GbE device model.
    pub fn wire_profile(mut self, rate: LineRate) -> SystemConfig {
        self.wire = Some(rate);
        self
    }

    /// Turns on the wall-clock self-profiler (`kite-prof`) for the
    /// building thread. Spans opened by the scheduler, dispatch loop and
    /// backends start recording; `kite_prof::report()` reads the result.
    /// Wall-clock numbers are nondeterministic — keep them out of
    /// anything diffed byte-for-byte (see DESIGN.md §14).
    pub fn profiling(mut self, on: bool) -> SystemConfig {
        self.profiling = on;
        self
    }

    /// Enables the virtual-time metrics sampler: one snapshot every
    /// `every`, at most `capacity` samples retained (oldest evicted).
    /// Read the series back with `sys.sampler()`.
    pub fn sampling(mut self, every: Nanos, capacity: usize) -> SystemConfig {
        self.sampling = Some((every, capacity));
        self
    }

    /// Builds the network scenario (client ⇄ NIC ⇄ driver domain ⇄
    /// guest) with this configuration applied.
    pub fn build_net(self) -> NetSystem {
        let mut sys = NetSystem::from_config(&self);
        self.finish_net(&mut sys);
        sys
    }

    /// Builds the storage scenario (guest ⇄ blkfront ⇄ driver domain ⇄
    /// NVMe) with this configuration applied.
    pub fn build_stor(self) -> StorSystem {
        let mut sys = StorSystem::from_config(&self);
        self.finish_stor(&mut sys);
        sys
    }

    fn finish_net(&self, sys: &mut NetSystem) {
        if let Some(cap) = self.tracing {
            sys.enable_tracing(cap);
        }
        if let Some(n) = self.req_tracing {
            sys.enable_req_tracing(n);
        }
        if self.copy_mode != CopyMode::default() {
            sys.set_copy_mode(self.copy_mode);
        }
        if let Some(slo) = self.slo {
            sys.set_slo(slo);
        }
        if let Some(cfg) = self.watchdog {
            sys.enable_watchdog(cfg);
        }
        if self.profiling {
            kite_prof::enable();
        }
        if let Some((every, cap)) = self.sampling {
            sys.enable_sampling(every, cap);
        }
    }

    fn finish_stor(&self, sys: &mut StorSystem) {
        if let Some(cap) = self.tracing {
            sys.enable_tracing(cap);
        }
        if let Some(n) = self.req_tracing {
            sys.enable_req_tracing(n);
        }
        if self.copy_mode != CopyMode::default() {
            sys.set_copy_mode(self.copy_mode);
        }
        if let Some(slo) = self.slo {
            sys.set_slo(slo);
        }
        if let Some(cfg) = self.watchdog {
            sys.enable_watchdog(cfg);
        }
        if self.profiling {
            kite_prof::enable();
        }
        if let Some((every, cap)) = self.sampling {
            sys.enable_sampling(every, cap);
        }
    }
}
