//! Full-system composition: the paper's testbed as a discrete-event
//! simulation.
//!
//! [`netsys::NetSystem`] wires client ⇄ wire ⇄ NIC ⇄ driver domain
//! (bridge + netback) ⇄ netfront ⇄ guest; [`storsys::StorSystem`] wires
//! guest ⇄ blkfront ⇄ driver domain (blkback) ⇄ NVMe. Both run under
//! either the Kite or the Linux [`netsys::BackendOs`] profile, which is
//! how every Kite-vs-Linux figure is produced.

pub mod config;
pub mod netsys;
pub mod storsys;

pub use config::{GsoMode, SystemConfig};
pub use kite_devices::LineRate;
pub use kite_sim::SchedulerKind;

pub use kite_health::{
    render_top, DetectionMode, HealthMonitor, HealthState, HeartbeatPublisher, MonitorConfig,
    SloConfig, TopRow, TopSnapshot,
};
pub use netsys::{
    addrs, BackendOs, NetMetrics, NetSystem, Reply, Side, UdpHandler, UdpMsg, GSO_UDP, MAX_UDP,
};
pub use storsys::{IoDone, IoHandler, IoKind, IoOp, StorMetrics, StorSystem};
