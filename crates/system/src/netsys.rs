//! The full network-domain scenario: client ⇄ wire ⇄ NIC ⇄ Kite/Linux
//! driver domain (bridge + netback) ⇄ netfront ⇄ guest application.
//!
//! This is the paper's Figure 2 as an executable discrete-event system.
//! Real frames (Ethernet/IPv4/UDP/ICMP bytes with valid checksums) cross
//! every hop; virtual time advances through the cost models: NIC
//! serialization and interrupt moderation, event-channel delivery, the
//! driver domain's single vCPU running the cooperative pusher/soft_start
//! threads, and the guest's frontend work.
//!
//! Applications attach as message handlers: the system auto-handles ICMP
//! in each endpoint's host stack and hands UDP payloads (macro workloads
//! model their TCP streams as segmented messages — see DESIGN.md §7) to
//! the registered handler, which returns replies.

use std::collections::{HashMap, VecDeque};
use std::net::Ipv4Addr;

use kite_core::{
    provision_device, BackendManager, DeviceLifecycle, NetbackInstance, NetbackStats, NetworkApp,
    RecoveryStats,
};
use kite_devices::{LineRate, Nic, NicProfile, RxIrq};
use kite_frontends::Netfront;
use kite_health::{
    slo, BreachAttribution, DetectionMode, HealthMonitor, HealthState, HeartbeatPublisher,
    MonitorConfig, ProgressSample, SloConfig, TopRow, TopSnapshot,
};
use kite_linux::{linux_profile, ubuntu_boot};
use kite_net::ether::{tso_wire_cost, TSO_MSS};
use kite_net::{
    BridgePort, EtherType, EthernetFrame, Forward, IcmpMessage, IpProto, Ipv4Packet, MacAddr,
    UdpDatagram,
};
use kite_rumprun::{kite_boot, kite_profile, BootSequence, OsProfile};
use kite_sim::{
    Cpu, CpuPool, EventSched, Histogram, Link, Nanos, OnlineStats, Pcg, Scheduler, SchedulerKind,
    TxOutcome,
};
use kite_trace::{EventKind, MetricsSnapshot, SampleKind, TimeSeriesSampler, DEFAULT_REQ_CAPACITY};
use kite_xen::xenbus::{FEATURE_GSO_KEY, MQ_MAX_QUEUES_KEY};
use kite_xen::{
    Bdf, CopyMode, DeviceKind, DevicePaths, DomainId, DomainKind, DomainState, FaultPlan,
    Hypervisor, Notification, Port, QueueMode, ReqStage, SlotClass, XenbusState,
};

use crate::config::{GsoMode, SystemConfig};

/// Which OS runs the driver domain.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BackendOs {
    /// Kite (rumprun unikernel).
    Kite,
    /// Ubuntu/Linux baseline.
    Linux,
}

impl BackendOs {
    /// The OS overhead profile.
    pub fn profile(self) -> OsProfile {
        match self {
            BackendOs::Kite => kite_profile(),
            BackendOs::Linux => linux_profile(),
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            BackendOs::Kite => "Kite",
            BackendOs::Linux => "Linux",
        }
    }

    /// The boot sequence a restarted driver domain goes through
    /// (Figure 4c: ≈7 s for Kite, ≈75 s for Ubuntu).
    pub fn boot(self) -> BootSequence {
        match self {
            BackendOs::Kite => kite_boot(),
            BackendOs::Linux => ubuntu_boot(),
        }
    }

    /// Both systems, for comparison sweeps.
    pub fn both() -> [BackendOs; 2] {
        [BackendOs::Linux, BackendOs::Kite]
    }
}

/// A UDP message delivered to an application handler.
#[derive(Clone, Debug)]
pub struct UdpMsg {
    /// Sender address.
    pub src_ip: Ipv4Addr,
    /// Sender port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

/// A reply an application handler wants transmitted.
#[derive(Clone, Debug)]
pub struct Reply {
    /// Destination address.
    pub dst_ip: Ipv4Addr,
    /// Destination port.
    pub dst_port: u16,
    /// Source port to stamp.
    pub src_port: u16,
    /// Payload bytes (chunked to MTU automatically).
    pub payload: Vec<u8>,
    /// Application compute cost charged before the reply leaves.
    pub cost: Nanos,
}

/// Application handler: reacts to one message with zero or more replies.
pub type UdpHandler = Box<dyn FnMut(Nanos, &UdpMsg) -> Vec<Reply>>;

/// Which endpoint an operation refers to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Side {
    /// The DomU guest behind the driver domain.
    Guest,
    /// The external client machine.
    Client,
}

enum Event {
    /// Event-channel notification arrives at a domain.
    Irq { dom: DomainId, port: Port },
    /// The server NIC's moderated receive interrupt.
    NicIrq,
    /// A frame lands on the server NIC from the wire.
    WireToServer(Vec<u8>),
    /// A frame lands on the client machine from the wire.
    WireToClient(Vec<u8>),
    /// A pre-scheduled application send.
    AppSend {
        side: Side,
        dst_ip: Ipv4Addr,
        dst_port: u16,
        src_port: u16,
        payload: Vec<u8>,
    },
    /// The client transmits a pre-built frame (ping).
    ClientTxFrame(Vec<u8>),
    /// The driver domain dies (fault injection / `xl destroy`).
    DriverCrash,
    /// The driver domain livelocks: its data path stops making progress
    /// while the domain (and its heartbeat task) keeps running.
    DriverHang,
    /// One netback queue's threads wedge (stuck kthread): the domain and
    /// its other queues keep working, only this queue stops.
    QueueWedge(usize),
    /// The replacement driver domain finished booting.
    DriverRestarted,
    /// The driver domain's heartbeat task publishes its next beat.
    BeatTick,
    /// Dom0's health monitor runs its next probe.
    ProbeTick,
    /// The time-series sampler takes its next snapshot.
    SampleTick,
}

/// Profiling phase for an event dispatch, by event kind.
fn phase_of(ev: &Event) -> kite_prof::Phase {
    use kite_prof::Phase;
    match ev {
        Event::AppSend { .. } => Phase::DispatchAppSend,
        Event::WireToServer(_) | Event::WireToClient(_) | Event::ClientTxFrame(_) => {
            Phase::DispatchWire
        }
        Event::NicIrq => Phase::DispatchNicIrq,
        Event::Irq { .. } => Phase::DispatchIrq,
        Event::DriverCrash | Event::DriverHang | Event::QueueWedge(_) => Phase::DispatchFault,
        Event::DriverRestarted => Phase::DispatchRecovery,
        Event::BeatTick | Event::ProbeTick => Phase::DispatchHealthTick,
        Event::SampleTick => Phase::DispatchSample,
    }
}

/// Largest message chunk crossing the PV path at once in
/// [`GsoMode::Legacy`].
///
/// Before segmentation offload was modeled explicitly, every scenario
/// assumed a multi-KB aggregate unit on the rings; page-sized chunks
/// stood in for TSO/GSO. Legacy mode keeps that abstraction (and its
/// exact byte streams) for historical comparability. `GsoMode::Off`
/// segments honestly to wire MTU; `GsoMode::On` moves real
/// [`GSO_UDP`]-sized super-frames over descriptor chains.
pub const MAX_UDP: usize = 4000;

/// Message chunk crossing the PV path per descriptor chain with GSO on:
/// 42 MSS-sized wire segments, the largest super-frame whose Ethernet
/// framing stays under the 64KB protocol cap.
pub const GSO_UDP: usize = TSO_MSS * 42;

/// Cap on frames queued in the guest stack awaiting Tx ring slots.
///
/// This models the sum of socket send buffers. Closed-loop (TCP-like)
/// workloads rely on it never dropping — real TCP would simply block the
/// writer — so it is sized generously; open-loop UDP floods lose packets
/// earlier, at the NIC queue and the netback Rx queue.
const GUEST_TXQ_CAP: usize = 1 << 20;

/// Guest (Ubuntu DomU) idle-wake cap: HVM halt exit + Linux scheduler
/// (identical in every scenario; calibrated against Figure 7's ping).
const GUEST_WAKE_CAP: Nanos = Nanos(190_000);
/// Guest idle-wake divisor.
const GUEST_WAKE_DIV: u64 = 24;

fn guest_idle_wake(idle: Nanos) -> Nanos {
    Nanos(idle.as_nanos() / GUEST_WAKE_DIV).min(GUEST_WAKE_CAP)
}

/// The ICMP echo sequence number carried by a raw frame, when it is one.
/// Request tracing keys ping requests on this: the request and its reply
/// share the sequence, so one `SlotClass::NetIcmp` entry follows the
/// whole round trip. Only called while tracing is enabled — decoding
/// allocates, and the disabled path must not.
fn icmp_echo_seq(frame: &[u8]) -> Option<u16> {
    let eth = EthernetFrame::decode(frame)?;
    if eth.ethertype != EtherType::Ipv4 {
        return None;
    }
    let ip = Ipv4Packet::decode(&eth.payload)?;
    if ip.proto != IpProto::Icmp {
        return None;
    }
    match IcmpMessage::decode(&ip.payload)? {
        IcmpMessage::EchoRequest { seq, .. } | IcmpMessage::EchoReply { seq, .. } => Some(seq),
    }
}

/// Measurement taps exposed to workloads.
#[derive(Default)]
pub struct NetMetrics {
    /// UDP payload bytes delivered to the client app.
    pub client_rx_bytes: u64,
    /// UDP datagrams delivered to the client app.
    pub client_rx_msgs: u64,
    /// UDP payload bytes delivered to the guest app.
    pub guest_rx_bytes: u64,
    /// UDP datagrams delivered to the guest app.
    pub guest_rx_msgs: u64,
    /// Datagrams dropped anywhere on the path.
    pub drops: u64,
    /// ICMP echo RTTs observed by the client.
    pub ping_rtts: OnlineStats,
}

/// Addresses used by the canonical scenario.
pub mod addrs {
    use std::net::Ipv4Addr;

    /// Gateway IP on the driver domain's physical IF.
    pub const GATEWAY: Ipv4Addr = Ipv4Addr::new(192, 168, 1, 50);
    /// The DomU guest.
    pub const GUEST: Ipv4Addr = Ipv4Addr::new(192, 168, 1, 100);
    /// The external client/load generator.
    pub const CLIENT: Ipv4Addr = Ipv4Addr::new(192, 168, 1, 10);
    /// Netmask.
    pub const NETMASK: Ipv4Addr = Ipv4Addr::new(255, 255, 255, 0);
}

/// The network scenario system.
pub struct NetSystem {
    /// The simulated Xen machine.
    pub hv: Hypervisor,
    /// Which OS the driver domain runs.
    pub os: BackendOs,
    queue: EventSched<Event>,
    profile: OsProfile,
    driver: DomainId,
    guest: DomainId,
    queue_mode: QueueMode,
    gso_mode: GsoMode,
    wire: Option<LineRate>,
    /// Largest UDP chunk the guest/client stacks hand to one PV transfer
    /// (one ring slot, or one descriptor chain with GSO on).
    max_tx_unit: usize,
    driver_cpus: CpuPool,
    nic: Nic,
    nic_bdf: Bdf,
    phys_mac: MacAddr,
    /// The driver domain's network application (bridge + interfaces).
    pub netapp: NetworkApp,
    mgr: BackendManager,
    paths: DevicePaths,
    netback: DeviceLifecycle<NetbackInstance>,
    nb_stats_base: NetbackStats,
    copy_mode: CopyMode,
    vif_port: BridgePort,
    if_port: BridgePort,
    guest_cpus: Vec<Cpu>,
    guest_rr: usize,
    guest_last_end: Nanos,
    netfront: Option<Netfront>,
    nf_dropped_base: u64,
    guest_mac: MacAddr,
    client_mac: MacAddr,
    guest_txq: VecDeque<Vec<u8>>,
    guest_app: Option<UdpHandler>,
    client_link: Link,
    client_app: Option<UdpHandler>,
    icmp_sent: HashMap<u16, Nanos>,
    boot: BootSequence,
    /// Crash/restart recovery accounting.
    pub recovery: RecoveryStats,
    /// Measurement taps.
    pub metrics: NetMetrics,
    /// Deterministic RNG stream for jitter.
    pub rng: Pcg,
    events_processed: u64,
    mode: DetectionMode,
    monitor: Option<HealthMonitor>,
    heartbeat: Option<HeartbeatPublisher>,
    /// The driver domain is livelocked: alive and beating, data path dead.
    hung: bool,
    /// At least one netback queue is wedged (partial failure injected).
    queue_wedged: bool,
    /// A detected outage is being recovered (detect → reconnect window).
    recovering: bool,
    /// Injected fault events still scheduled; keeps the watchdog ticking.
    pending_faults: u32,
    slo_cfg: SloConfig,
    latency_hist: Histogram,
    sampler: Option<TimeSeriesSampler>,
    /// Stage attribution of the most recent SLO p99 breach the watchdog
    /// observed (request tracing on), for `kitetop`/health reporting.
    last_breach: Option<BreachAttribution>,
}

impl NetSystem {
    /// Builds the full scenario with the paper's domain layout and runs
    /// the xenbus connection handshake to `Connected` on both ends
    /// (single-queue legacy layout). Shorthand for
    /// `SystemConfig::new(os, seed).build_net()`.
    pub fn new(os: BackendOs, seed: u64) -> NetSystem {
        SystemConfig::new(os, seed).build_net()
    }

    /// Like [`NetSystem::new`], but with `queues` device queues.
    ///
    /// Thin compatibility wrapper over [`SystemConfig`]; new code should
    /// use the builder (`SystemConfig::new(..).queue_mode(..)`), which
    /// also exposes copy mode, watchdog, tracing and scheduler choice.
    pub fn new_with_queues(os: BackendOs, seed: u64, queues: QueueMode) -> NetSystem {
        SystemConfig::new(os, seed).queue_mode(queues).build_net()
    }

    /// Builds the scenario from a [`SystemConfig`]: the driver domain
    /// gets one vCPU per queue, the toolstack advertises
    /// `multi-queue-max-queues` on the backend, and the frontend
    /// negotiates that many ring pairs. `QueueMode::Multi(1)` takes the
    /// identical code path as `Single` (no multi-queue keys are ever
    /// written), so the two are behaviorally indistinguishable.
    pub(crate) fn from_config(cfg: &SystemConfig) -> NetSystem {
        let (os, seed, queues) = (cfg.os, cfg.seed, cfg.queue_mode);
        let nqueues = queues.queues();
        let mut profile = os.profile();
        // Run-to-run noise: real machines vary a little between runs
        // (cache/NUMA placement, interrupt alignment). Perturb the OS
        // costs by a seed-derived ±0.4% so repeated runs with different
        // seeds report realistic relative standard deviations (Table 4).
        let mut jrng = Pcg::new(seed, 0x6a69747465725f31);
        profile.per_packet = jrng.jitter(profile.per_packet, 0.004);
        profile.wakeup_latency = jrng.jitter(profile.wakeup_latency, 0.004);
        profile.idle_wake_cap = jrng.jitter(profile.idle_wake_cap, 0.004);
        let mut hv = Hypervisor::new();
        hv.create_domain("Domain-0", DomainKind::Dom0, 8192, 4);
        let driver = hv.create_domain(
            match os {
                BackendOs::Kite => "netbackend",
                BackendOs::Linux => "ubuntu-dd",
            },
            DomainKind::Driver,
            if os == BackendOs::Kite { 1024 } else { 2048 },
            nqueues,
        );
        let guest = hv.create_domain("guest", DomainKind::Guest, 5120, 22);

        // PCI passthrough of the NIC to the driver domain.
        let bdf: kite_xen::Bdf = "03:00.0".parse().expect("static BDF");
        hv.pci.add_device(kite_xen::PciDevice {
            bdf,
            class: kite_xen::PciClass::Network,
            name: "Intel 82599ES 10-Gigabit SFI/SFP+".into(),
        });
        hv.pci.make_assignable(bdf).expect("fresh device");
        hv.pci.assign(bdf, driver).expect("assignable");

        let phys_mac = MacAddr::local(0xee01);
        let guest_mac = MacAddr::local(0xaa01);
        let client_mac = MacAddr::local(0xcc01);

        let mut netapp = NetworkApp::start("ixg0", phys_mac, addrs::GATEWAY, addrs::NETMASK);
        let if_port = netapp.port_of("ixg0").expect("attached at start");

        let mut mgr = BackendManager::new(driver, DeviceKind::Vif);
        mgr.start(&mut hv).expect("watch");
        let paths = DevicePaths::new(guest, driver, DeviceKind::Vif, 0);
        provision_device(&mut hv, &paths).expect("provision");
        if nqueues > 1 {
            // The toolstack advertises how many queues this backend
            // accepts; the frontend reads it and negotiates.
            let be = paths.backend();
            hv.store
                .write(
                    DomainId::DOM0,
                    None,
                    &format!("{be}/{MQ_MAX_QUEUES_KEY}"),
                    &nqueues.to_string(),
                )
                .expect("advertise queues");
        }
        if cfg.gso_mode == GsoMode::On {
            // The toolstack advertises segmentation offload under the
            // backend path; the frontend echoes it when willing.
            let be = paths.backend();
            hv.store
                .write(
                    DomainId::DOM0,
                    None,
                    &format!("{be}/{FEATURE_GSO_KEY}"),
                    "1",
                )
                .expect("advertise gso");
        }
        mgr.drain_events(&mut hv).expect("scan");
        let netfront =
            Netfront::connect_with_queues(&mut hv, &paths, guest_mac, nqueues).expect("netfront");
        let ready = mgr.drain_events(&mut hv).expect("events");
        assert_eq!(ready.len(), 1, "frontend discovered via watch event");
        let mut netback: DeviceLifecycle<NetbackInstance> =
            DeviceLifecycle::new(ready[0].clone(), profile.clone());
        netback.connect(&mut hv).expect("netback");
        let vif_port = netapp.add_vif(&netback.device().expect("connected").vif, guest_mac);
        hv.switch_state(guest, &paths.frontend_state(), XenbusState::Connected)
            .expect("frontend connect");

        NetSystem {
            hv,
            os,
            queue: EventSched::new(cfg.scheduler),
            profile,
            driver,
            guest,
            queue_mode: queues,
            gso_mode: cfg.gso_mode,
            wire: cfg.wire,
            max_tx_unit: match cfg.gso_mode {
                GsoMode::Legacy => MAX_UDP,
                GsoMode::Off => TSO_MSS,
                GsoMode::On => GSO_UDP,
            },
            driver_cpus: CpuPool::new(nqueues as usize),
            nic: match cfg.wire {
                None => Nic::ten_gbe(),
                Some(rate) => Nic::with_profile(NicProfile::default().with_line_rate(rate)),
            },
            nic_bdf: bdf,
            phys_mac,
            netapp,
            mgr,
            paths,
            netback,
            nb_stats_base: NetbackStats::default(),
            copy_mode: CopyMode::default(),
            vif_port,
            if_port,
            guest_cpus: (0..22).map(|_| Cpu::new()).collect(),
            guest_rr: 0,
            guest_last_end: Nanos::ZERO,
            netfront: Some(netfront),
            nf_dropped_base: 0,
            guest_mac,
            client_mac,
            guest_txq: VecDeque::new(),
            guest_app: None,
            client_link: match cfg.wire {
                None => Link::ten_gbe(),
                Some(rate) => {
                    let mut l = Link::ten_gbe();
                    l.rate_bps = rate.bps();
                    l
                }
            },
            client_app: None,
            icmp_sent: HashMap::new(),
            boot: os.boot(),
            recovery: RecoveryStats::default(),
            metrics: NetMetrics::default(),
            rng: Pcg::seeded(seed),
            events_processed: 0,
            mode: DetectionMode::Oracle,
            monitor: None,
            heartbeat: None,
            hung: false,
            queue_wedged: false,
            recovering: false,
            pending_faults: 0,
            slo_cfg: SloConfig::default(),
            latency_hist: Histogram::default(),
            sampler: None,
            last_breach: None,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> Nanos {
        self.queue.now()
    }

    /// Switches the driver domain's network application to NAT linking
    /// (the paper's §3.1 alternative to bridging). Call before traffic.
    pub fn use_nat(&mut self) {
        self.netapp.use_nat();
    }

    /// Installs the guest-side application handler.
    pub fn set_guest_app(&mut self, h: UdpHandler) {
        self.guest_app = Some(h);
    }

    /// Installs the client-side application handler.
    pub fn set_client_app(&mut self, h: UdpHandler) {
        self.client_app = Some(h);
    }

    /// Schedules a UDP send at `t`; payloads above one MTU are chunked.
    pub fn send_udp_at(
        &mut self,
        t: Nanos,
        side: Side,
        dst_ip: Ipv4Addr,
        dst_port: u16,
        src_port: u16,
        payload: Vec<u8>,
    ) {
        let unit = self.max_tx_unit;
        let mut chunks: Vec<Vec<u8>> = if payload.len() <= unit {
            vec![payload]
        } else {
            payload.chunks(unit).map(|c| c.to_vec()).collect()
        };
        for chunk in chunks.drain(..) {
            self.queue.schedule_at(
                t,
                Event::AppSend {
                    side,
                    dst_ip,
                    dst_port,
                    src_port,
                    payload: chunk,
                },
            );
        }
    }

    /// Schedules an ICMP echo request from the client at `t` (ping).
    pub fn ping_at(&mut self, t: Nanos, seq: u16) {
        let req = IcmpMessage::EchoRequest {
            ident: 0x4b49,
            seq,
            payload: vec![0x2a; 56],
        };
        let ip = Ipv4Packet::new(addrs::CLIENT, addrs::GUEST, IpProto::Icmp, req.encode());
        let frame = EthernetFrame::new(
            self.guest_mac,
            self.client_mac,
            EtherType::Ipv4,
            ip.encode(),
        );
        self.icmp_sent.insert(seq, t);
        // Injection point for request tracing: the sampler decides here
        // whether this ping's round trip is followed stage by stage. The
        // client machine is outside any domain; its stamps book to dom 0.
        self.hv.req.set_now(t);
        if let Some(r) = self.hv.req.admit(0) {
            self.hv.req.map(SlotClass::NetIcmp, seq as u64, r);
        }
        self.queue
            .schedule_at(t, Event::ClientTxFrame(frame.encode()));
    }

    /// Schedules a driver-domain crash at `t` (kill injection).
    pub fn crash_driver_at(&mut self, t: Nanos) {
        self.pending_faults += 1;
        self.queue.schedule_at(t, Event::DriverCrash);
    }

    /// Schedules a driver-domain livelock at `t` (hang injection).
    pub fn hang_driver_at(&mut self, t: Nanos) {
        self.pending_faults += 1;
        self.queue.schedule_at(t, Event::DriverHang);
    }

    /// Schedules a single-queue wedge at `t`: queue `q`'s netback
    /// threads stop running while the domain, its heartbeat, and every
    /// other queue stay healthy. Only per-queue stall detection catches
    /// this partial failure.
    pub fn wedge_queue_at(&mut self, t: Nanos, q: usize) {
        self.pending_faults += 1;
        self.queue.schedule_at(t, Event::QueueWedge(q));
    }

    /// The negotiated queue layout.
    pub fn queue_mode(&self) -> QueueMode {
        self.queue_mode
    }

    /// The configured segmentation mode.
    pub fn gso_mode(&self) -> GsoMode {
        self.gso_mode
    }

    /// The configured wire profile (`None` = the stock 10GbE device).
    pub fn wire(&self) -> Option<LineRate> {
        self.wire
    }

    /// Whether the *connected* backend/frontend pair negotiated GSO
    /// chains (false while the backend is down).
    pub fn gso_negotiated(&self) -> bool {
        self.netback.device().is_some_and(|nb| nb.gso())
            && self.netfront.as_ref().is_some_and(|nf| nf.gso())
    }

    /// Queues on the currently connected netback (0 when down).
    pub fn queue_count(&self) -> usize {
        self.netback.device().map_or(0, |nb| nb.queue_count())
    }

    /// Per-queue world→guest backlog depths on the connected netback.
    pub fn rx_queue_depths(&self) -> Vec<usize> {
        self.netback
            .device()
            .map_or_else(Vec::new, |nb| nb.rx_backlogs())
    }

    /// Arms a fault plan: per-op fault rates go live on the hypervisor,
    /// and `kill_at` / `hang_at` times (if set) schedule the
    /// driver-domain crash or livelock.
    pub fn inject_faults(&mut self, mut plan: FaultPlan) {
        if let Some(t) = plan.take_kill() {
            self.crash_driver_at(t);
        }
        if let Some(t) = plan.take_hang() {
            self.hang_driver_at(t);
        }
        self.hv.faults = plan;
    }

    /// Switches failure detection from the oracle to the active watchdog:
    /// the driver domain starts publishing heartbeats and Dom0 starts
    /// probing them (plus ring progress and the SLO). Call before
    /// injecting faults so the first probe precedes the first fault.
    pub fn enable_watchdog(&mut self, cfg: MonitorConfig) {
        let now = self.queue.now();
        self.mode = DetectionMode::Watchdog;
        self.monitor = Some(HealthMonitor::new(DomainId::DOM0, self.driver, cfg, now));
        self.heartbeat = Some(HeartbeatPublisher::new(self.driver));
        self.queue
            .schedule_at(now + cfg.heartbeat_interval, Event::BeatTick);
        self.queue
            .schedule_at(now + cfg.probe_interval, Event::ProbeTick);
    }

    /// Starts the time-series sampler: every `every` of virtual time a
    /// `SampleTick` snapshots throughput counters (as deltas),
    /// drop counters, per-queue RX depths, and the watchdog health state
    /// into a bounded ring of `capacity` samples (oldest evicted first).
    ///
    /// The tick re-arms only while other events are still pending, so
    /// [`run_to_quiescence`](Self::run_to_quiescence) terminates: the
    /// sampler rides along with the workload instead of keeping the
    /// clock alive on its own.
    pub fn enable_sampling(&mut self, every: Nanos, capacity: usize) {
        let mut sampler = TimeSeriesSampler::new(every, capacity)
            .with_column("client_rx_bytes", SampleKind::Counter)
            .with_column("guest_rx_bytes", SampleKind::Counter)
            .with_column("drops", SampleKind::Counter)
            .with_column("tx_packets", SampleKind::Counter)
            .with_column("rx_dropped", SampleKind::Counter)
            .with_column("health", SampleKind::Gauge);
        for q in 0..self.queue_mode.queues() {
            sampler = sampler.with_column(&format!("rx_qdepth_q{q}"), SampleKind::Gauge);
        }
        self.sampler = Some(sampler);
        let now = self.queue.now();
        self.queue.schedule_at(now + every, Event::SampleTick);
    }

    /// The time series recorded by [`enable_sampling`](Self::enable_sampling).
    pub fn sampler(&self) -> Option<&TimeSeriesSampler> {
        self.sampler.as_ref()
    }

    fn sample_now(&mut self, at: Nanos) {
        let Some(mut sampler) = self.sampler.take() else {
            return;
        };
        let stats = self.netback_stats();
        let health = match self.health() {
            None | Some(HealthState::Healthy) => 0u64,
            Some(HealthState::Suspect { .. }) => 1,
            _ => 2,
        };
        let mut raw = vec![
            self.metrics.client_rx_bytes,
            self.metrics.guest_rx_bytes,
            self.metrics.drops,
            stats.tx_packets,
            stats.rx_dropped,
            health,
        ];
        // Depths come back empty while the backend is down; pad so the
        // sample width stays fixed.
        let depths = self.rx_queue_depths();
        for q in 0..self.queue_mode.queues() {
            raw.push(depths.get(q as usize).copied().unwrap_or(0) as u64);
        }
        sampler.record(at, &raw);
        self.sampler = Some(sampler);
    }

    /// Sets the request-latency SLO the watchdog folds into its verdict.
    pub fn set_slo(&mut self, cfg: SloConfig) {
        self.slo_cfg = cfg;
    }

    /// The active failure-detection mode.
    pub fn detection_mode(&self) -> DetectionMode {
        self.mode
    }

    /// The health monitor's current verdict, when the watchdog is on.
    pub fn health(&self) -> Option<HealthState> {
        self.monitor.as_ref().map(|m| m.state())
    }

    /// Whether the backend is currently up and serving.
    pub fn backend_alive(&self) -> bool {
        self.netback.is_connected() && !self.hung
    }

    /// Runs the event loop until `deadline`.
    pub fn run_until(&mut self, deadline: Nanos) {
        while let Some(t) = self.queue.peek_time() {
            if t > deadline {
                break;
            }
            let (now, ev) = self.queue.pop().expect("peeked");
            self.events_processed += 1;
            self.handle(now, ev);
        }
    }

    /// Runs until no events remain.
    pub fn run_to_quiescence(&mut self) {
        while let Some((now, ev)) = self.queue.pop() {
            self.events_processed += 1;
            self.handle(now, ev);
        }
    }

    // ---- internals -----------------------------------------------------

    /// Schedules delivery of an event-channel notification raised at
    /// `done`: the one pattern every evtchn kick funnels through.
    fn sched_irq(&mut self, done: Nanos, n: Option<Notification>) {
        if let Some(n) = n {
            let delay = self.hv.irq_delay();
            self.queue.schedule_at(
                done + delay,
                Event::Irq {
                    dom: n.domain,
                    port: n.port,
                },
            );
        }
    }

    fn guest_cpu_run(&mut self, now: Nanos, cost: Nanos) -> Nanos {
        // Least-loaded dispatch over the DomU's 22 vCPUs.
        let mut best = self.guest_rr % self.guest_cpus.len();
        let mut best_free = Nanos::MAX;
        for (i, c) in self.guest_cpus.iter().enumerate() {
            if c.free_at() < best_free {
                best_free = c.free_at();
                best = i;
            }
        }
        self.guest_rr += 1;
        let done = self.guest_cpus[best].run(now, cost);
        self.guest_last_end = self.guest_last_end.max(done);
        done
    }

    /// The driver domain dies mid-flight. No teardown code runs in it —
    /// Xen reclaims its grant mappings, ports and PCI devices, and the
    /// domain's heartbeat stops with it. Under the oracle, detection is
    /// immediate; under the watchdog, the frontend keeps talking to the
    /// dead backend until Dom0's monitor notices the silence.
    fn kill_driver(&mut self, now: Nanos) {
        if !self.netback.is_connected() || self.recovering {
            return; // already down
        }
        self.hung = false; // a dead domain no longer livelocks
        self.recovery.record_crash(now);
        let dead = self.driver.0;
        self.hv
            .trace
            .emit_with(dead, || EventKind::Milestone { what: "kill" });
        if let Some(nb) = self.netback.abandon(&mut self.hv) {
            // World->guest frames parked in the dead backend are gone.
            self.recovery.dropped_frames += nb.rx_backlog() as u64;
            self.metrics.drops += nb.rx_backlog() as u64;
            self.nb_stats_base.merge(&nb.stats());
            self.netapp.remove_vif(&nb.vif);
        }
        self.hv
            .destroy_domain(self.driver)
            .expect("driver was alive");
        if self.mode == DetectionMode::Oracle {
            self.detect_failure(now);
        }
    }

    /// The driver domain livelocks (e.g. an interrupt storm or a spinning
    /// thread): the domain stays alive — and keeps publishing heartbeats
    /// — but netback stops consuming requests. Only the watchdog's
    /// ring-progress detector can catch this; the oracle variant detects
    /// it immediately, for ablation.
    fn hang_driver(&mut self, now: Nanos) {
        if !self.netback.is_connected() || self.hung || self.recovering {
            return;
        }
        self.hung = true;
        self.recovery.record_hang(now);
        let dom = self.driver.0;
        self.hv
            .trace
            .emit_with(dom, || EventKind::Milestone { what: "hang" });
        if self.mode == DetectionMode::Oracle {
            self.detect_failure(now);
        }
    }

    /// Dom0's toolstack learns the backend failed (oracle: at the fault;
    /// watchdog: when the monitor's verdict turns `Failed`): it destroys
    /// the domain if it still runs (livelock), walks the xenbus states so
    /// the frontend sees the device disappear, harvests what the dead
    /// backend never acknowledged, and schedules the replacement boot.
    fn detect_failure(&mut self, now: Nanos) {
        if self.recovering {
            return; // recovery already underway
        }
        self.recovering = true;
        if let Some(nb) = self.netback.abandon(&mut self.hv) {
            // Livelocked backend: its parked world->guest frames die with it.
            self.recovery.dropped_frames += nb.rx_backlog() as u64;
            self.metrics.drops += nb.rx_backlog() as u64;
            self.nb_stats_base.merge(&nb.stats());
            self.netapp.remove_vif(&nb.vif);
        }
        if self.hv.domains.alive(self.driver) {
            let _ = self.hv.destroy_domain(self.driver);
        }
        self.hung = false;
        self.queue_wedged = false;
        let d0 = DomainId::DOM0;
        let bs = self.paths.backend_state();
        let _ = self.hv.switch_state(d0, &bs, XenbusState::Closing);
        let _ = self.hv.switch_state(d0, &bs, XenbusState::Closed);
        self.recovery.record_detect(now);
        self.hv
            .trace
            .emit_with(d0.0, || EventKind::Milestone { what: "detect" });
        // The frontend observes `Closed`, salvages its unacknowledged Tx
        // frames for replay and retires the device; `Closed` is what lets
        // the toolstack re-provision the pair back to `Initialising`.
        if let Some(mut nf) = self.netfront.take() {
            let unacked = nf.take_unacked(&self.hv);
            self.recovery.retried_ops += unacked.len() as u64;
            self.nf_dropped_base += nf.tx_dropped();
            for f in unacked.into_iter().rev() {
                self.guest_txq.push_front(f);
            }
        }
        let fs = self.paths.frontend_state();
        let _ = self.hv.switch_state(self.guest, &fs, XenbusState::Closing);
        let _ = self.hv.switch_state(self.guest, &fs, XenbusState::Closed);
        let boot = self.boot.sample(&mut self.rng);
        self.queue.schedule_at(now + boot, Event::DriverRestarted);
    }

    /// The replacement driver domain finished booting: fresh domain id
    /// (Xen never reuses them), NIC re-assigned, bridge rebuilt, device
    /// pair re-provisioned, and both ends reconnected through the same
    /// lifecycle slot. Everything queued during the outage drains.
    fn driver_restarted(&mut self, now: Nanos) {
        let (name, mem) = match self.os {
            BackendOs::Kite => ("netbackend", 1024),
            BackendOs::Linux => ("ubuntu-dd", 2048),
        };
        let nqueues = self.queue_mode.queues();
        let driver = self
            .hv
            .create_domain(name, DomainKind::Driver, mem, nqueues);
        self.driver = driver;
        self.hv
            .trace
            .emit_with(driver.0, || EventKind::Milestone { what: "reboot" });
        self.driver_cpus = CpuPool::new(nqueues as usize);
        self.hv
            .pci
            .assign(self.nic_bdf, driver)
            .expect("nic back in pool");
        self.netapp = NetworkApp::start("ixg0", self.phys_mac, addrs::GATEWAY, addrs::NETMASK);
        self.if_port = self.netapp.port_of("ixg0").expect("attached at start");
        self.mgr = BackendManager::new(driver, DeviceKind::Vif);
        self.mgr.start(&mut self.hv).expect("watch");
        self.paths = DevicePaths::new(self.guest, driver, DeviceKind::Vif, 0);
        provision_device(&mut self.hv, &self.paths).expect("re-provision");
        if nqueues > 1 {
            let be = self.paths.backend();
            self.hv
                .store
                .write(
                    DomainId::DOM0,
                    None,
                    &format!("{be}/{MQ_MAX_QUEUES_KEY}"),
                    &nqueues.to_string(),
                )
                .expect("re-advertise queues");
        }
        if self.gso_mode == GsoMode::On {
            // The replacement backend re-advertises offloads; the
            // frontend renegotiates from scratch, exactly as at first
            // connect — offloads survive crash recovery.
            let be = self.paths.backend();
            self.hv
                .store
                .write(
                    DomainId::DOM0,
                    None,
                    &format!("{be}/{FEATURE_GSO_KEY}"),
                    "1",
                )
                .expect("re-advertise gso");
        }
        self.mgr.drain_events(&mut self.hv).expect("scan");
        let nf = Netfront::connect_with_queues(&mut self.hv, &self.paths, self.guest_mac, nqueues)
            .expect("netfront");
        self.netfront = Some(nf);
        let ready = self.mgr.drain_events(&mut self.hv).expect("events");
        assert_eq!(ready.len(), 1, "frontend rediscovered after restart");
        self.netback
            .retarget(&mut self.hv, ready[0].clone())
            .expect("slot empty");
        self.netback.connect(&mut self.hv).expect("reconnect");
        if let Some(nb) = self.netback.device_mut() {
            nb.set_copy_mode(self.copy_mode);
            self.vif_port = self.netapp.add_vif(&nb.vif, self.guest_mac);
        }
        self.hv
            .switch_state(
                self.guest,
                &self.paths.frontend_state(),
                XenbusState::Connected,
            )
            .expect("frontend reconnect");
        self.recovery.reconnects += 1;
        self.hv
            .trace
            .emit_with(driver.0, || EventKind::Milestone { what: "reconnect" });
        if let Some(t0) = self.recovery.last_crash_at {
            self.recovery.downtime += now - t0;
        }
        self.recovering = false;
        if self.mode == DetectionMode::Watchdog {
            // The replacement domain's heartbeat task beats as soon as it
            // boots, and the monitor re-aims at the new domain id.
            let mut hb = HeartbeatPublisher::new(driver);
            let _ = hb.beat(&mut self.hv);
            self.heartbeat = Some(hb);
            if let Some(mon) = self.monitor.as_mut() {
                mon.retarget(&mut self.hv, driver, now);
            }
        }
        // Replay harvested frames plus everything queued while down.
        self.drain_guest_txq(now);
    }

    fn mac_of(&self, ip: Ipv4Addr) -> MacAddr {
        if ip == addrs::GUEST {
            self.guest_mac
        } else if ip == addrs::CLIENT {
            self.client_mac
        } else {
            // Gateway / unknown: the physical IF answers.
            self.netapp
                .ifs
                .get("ixg0")
                .map(|i| i.mac)
                .unwrap_or(MacAddr::BROADCAST)
        }
    }

    fn build_udp_frame(
        &mut self,
        src_ip: Ipv4Addr,
        src_mac: MacAddr,
        dst_ip: Ipv4Addr,
        dst_port: u16,
        src_port: u16,
        payload: Vec<u8>,
    ) -> Vec<u8> {
        let udp = UdpDatagram::new(src_port, dst_port, payload).encode(src_ip, dst_ip);
        let ip = Ipv4Packet::new(src_ip, dst_ip, IpProto::Udp, udp);
        EthernetFrame::new(self.mac_of(dst_ip), src_mac, EtherType::Ipv4, ip.encode()).encode()
    }

    /// Wire footprint of one frame: byte count to serialize and the
    /// number of MTU segments it becomes.
    ///
    /// `GsoMode::Legacy` keeps the historical abstraction — aggregates
    /// cross the wire as-is with one framing overhead — so pre-offload
    /// scenarios stay byte-identical. The explicit modes charge the
    /// honest TSO cost: a super-frame is segmented to MTU with
    /// replicated headers and per-segment framing.
    fn wire_cost(&self, frame_len: usize) -> (u64, u32) {
        match self.gso_mode {
            GsoMode::Legacy => (frame_len as u64 + 24, 1),
            GsoMode::Off | GsoMode::On => tso_wire_cost(frame_len),
        }
    }

    /// Client machine puts a frame on the wire toward the server NIC.
    /// Super-frames go through the client NIC's TSO engine: the wire
    /// carries MTU segments (with replicated headers and per-segment
    /// framing overhead), so serialization charges the segmented byte
    /// count even though the simulation moves the aggregate.
    fn client_transmit(&mut self, now: Nanos, frame: Vec<u8>) {
        let (wire_len, _segs) = self.wire_cost(frame.len());
        let sent = self
            .client_link
            .transmit_then(&mut self.queue, now, wire_len, |_| {
                Event::WireToServer(frame)
            });
        if sent == TxOutcome::Dropped {
            self.metrics.drops += 1;
        }
    }

    /// Queues a frame in the guest stack and pushes as much as fits into
    /// the Tx ring, notifying the backend when the protocol asks.
    fn guest_send_frame(&mut self, now: Nanos, frame: Vec<u8>) {
        if self.guest_txq.len() >= GUEST_TXQ_CAP {
            self.metrics.drops += 1;
            return;
        }
        self.guest_txq.push_back(frame);
        self.drain_guest_txq(now);
    }

    fn drain_guest_txq(&mut self, now: Nanos) {
        if self.netfront.is_none() {
            return; // backend down: frames wait for the replacement device
        }
        // `now` includes the guest's idle-wake latency, which the
        // per-event clock does not: re-aim the tracer so the RingSubmit
        // stamps inside `send` book at the drain time, after RxDeliver.
        self.hv.req.set_now(now);
        let mut notify: std::collections::BTreeSet<usize> = std::collections::BTreeSet::new();
        let mut cost = Nanos::ZERO;
        while let Some(frame) = self.guest_txq.front() {
            let req = if self.hv.req.is_enabled() {
                icmp_echo_seq(frame)
                    .and_then(|seq| self.hv.req.lookup(SlotClass::NetIcmp, seq as u64))
            } else {
                None
            };
            let res = self
                .netfront
                .as_mut()
                .expect("checked")
                .send(&mut self.hv, frame, req);
            match res {
                Ok((q, op)) => {
                    self.guest_txq.pop_front();
                    if op.notify {
                        notify.insert(q);
                    }
                    cost += op.cost;
                }
                Err(_) => break, // ring full; retried on Tx completion
            }
        }
        if cost > Nanos::ZERO {
            self.guest_cpu_run(now, cost);
        }
        for q in notify {
            let port = self.netfront.as_ref().expect("checked").port_of(q);
            // The channel dies with the backend domain: a notify raised
            // during an undetected-outage window is simply lost.
            if let Ok((n, send_cost)) = self.hv.evtchn_send(self.guest, port) {
                let done = self.guest_cpu_run(now, send_cost);
                self.sched_irq(done, n);
            }
        }
    }

    /// Hands a world->guest frame to netback's Rx queue; during an
    /// outage (or on queue overflow) the frame is dropped, as real
    /// traffic is while a driver domain reboots.
    fn deliver_to_guest(&mut self, frame: Vec<u8>) {
        match self.netback.device_mut() {
            Some(nb) => {
                if !nb.enqueue_to_guest(frame) {
                    self.metrics.drops += 1;
                }
            }
            None => {
                self.metrics.drops += 1;
                self.recovery.dropped_frames += 1;
            }
        }
    }

    /// Forwarding inside the driver domain for one frame arriving on
    /// `ingress`. Returns frames destined to the NIC wire.
    ///
    /// In [`kite_core::netapp::LinkMode::Bridge`] this is the learning
    /// bridge; in NAT mode the app routes at L3, rewriting addresses
    /// (with checksums re-encoded) in each direction.
    fn bridge_forward(&mut self, now: Nanos, ingress: BridgePort, frame: Vec<u8>) -> Vec<Vec<u8>> {
        if self.netapp.mode == kite_core::netapp::LinkMode::Nat {
            if ingress == self.vif_port {
                // Guest → world: SNAT to the gateway; non-NATable frames
                // (ICMP in this model) pass through unchanged.
                let out = self.netapp.nat_outbound(&frame).unwrap_or(frame);
                return vec![out];
            }
            // World → gateway: reverse-translate or drop (unsolicited).
            match self.netapp.nat_inbound(&frame, self.guest_mac) {
                Some(inframe) => {
                    self.deliver_to_guest(inframe);
                }
                None => {
                    // ICMP and ARP still reach the guest (the gateway
                    // proxies them); unsolicited UDP is dropped.
                    let Some(eth) = EthernetFrame::decode(&frame) else {
                        return Vec::new();
                    };
                    let is_udp = Ipv4Packet::decode(&eth.payload)
                        .map(|ip| ip.proto == IpProto::Udp)
                        .unwrap_or(false);
                    if !is_udp {
                        self.deliver_to_guest(frame);
                    } else {
                        self.metrics.drops += 1;
                    }
                }
            }
            return Vec::new();
        }
        let Some(eth) = EthernetFrame::decode(&frame) else {
            return Vec::new();
        };
        let decision = self.netapp.bridge.input(ingress, eth.src, eth.dst, now);
        let mut to_wire = Vec::new();
        let ports: Vec<BridgePort> = match decision {
            Forward::Unicast(p) => vec![p],
            Forward::Flood(ps) => ps,
            Forward::Drop => Vec::new(),
        };
        for p in ports {
            if p == self.if_port {
                to_wire.push(frame.clone());
            } else if p == self.vif_port {
                self.deliver_to_guest(frame.clone());
            }
        }
        to_wire
    }

    /// Transmits frames out the physical NIC starting at `t`. A frame
    /// above wire MTU is a super-frame the NIC's TSO engine segments:
    /// serialization charges the full segmented byte count and the
    /// per-segment descriptor cost, but the frame crosses the simulated
    /// wire as one unit.
    fn nic_transmit(&mut self, t: Nanos, frames: Vec<Vec<u8>>) {
        for frame in frames {
            let (wire_len, segs) = self.wire_cost(frame.len());
            match self.nic.transmit_segs(t, wire_len, segs) {
                TxOutcome::Sent { arrives, .. } => {
                    self.queue.schedule_at(arrives, Event::WireToClient(frame));
                }
                TxOutcome::Dropped => self.metrics.drops += 1,
            }
        }
    }

    /// Runs the netback threads (pusher then soft_start) to exhaustion,
    /// starting at `now`; schedules all effects.
    ///
    /// Each queue's thread pair is pinned to its own driver vCPU, so
    /// with `QueueMode::Multi(n)` on an n-vCPU driver domain the queues
    /// drain concurrently: wall-clock elapsed is the slowest queue, not
    /// the sum of all of them.
    fn run_netback(&mut self, now: Nanos) {
        if !self.netback.is_connected() || self.hung {
            return; // driver domain down (or livelocked: threads never run)
        }
        let nqueues = self.netback.device().expect("checked").queue_count();
        for q in 0..nqueues {
            // Pusher: guest -> bridge/world.
            let mut guest_frames = Vec::new();
            loop {
                let nb = self.netback.device_mut().expect("checked");
                let batch = nb.pusher_run(&mut self.hv, q, 128).expect("pusher");
                let evtchn = nb.port_of(q);
                let had = !batch.frames.is_empty();
                guest_frames.extend(batch.frames);
                let done = self.driver_cpus.run_on(
                    q,
                    now,
                    batch.cost + self.profile.wakeup_latency.min(Nanos::from_nanos(200)),
                );
                if batch.notify {
                    let (n, c) = self.hv.evtchn_send(self.driver, evtchn).expect("channel");
                    let done = self.driver_cpus.run_on(q, done, c);
                    self.sched_irq(done, n);
                }
                if !batch.more && !had {
                    break;
                }
                if !batch.more {
                    break;
                }
            }
            // Upper layer: push this queue's pusher output through the
            // bridge, then onto the wire once this queue's vCPU is free.
            let mut to_wire = Vec::new();
            for f in guest_frames {
                to_wire.extend(self.bridge_forward(now, self.vif_port, f));
            }
            let t = self.driver_cpus.free_at(q).max(now);
            if self.hv.req.is_enabled() {
                let qid = (nqueues > 1).then_some(q as u16);
                for f in &to_wire {
                    if let Some(r) = icmp_echo_seq(f)
                        .and_then(|seq| self.hv.req.lookup(SlotClass::NetIcmp, seq as u64))
                    {
                        let dom = self.driver.0;
                        self.hv.req.stamp_at(r, ReqStage::NicTx, dom, qid, t);
                        let (_, segs) = self.wire_cost(f.len());
                        if segs > 1 {
                            self.hv.req.annotate_segs(r, ReqStage::NicTx, segs as u16);
                        }
                    }
                }
            }
            self.nic_transmit(t, to_wire);
        }

        // soft_start: queued world -> guest frames into the Rx rings.
        for q in 0..nqueues {
            loop {
                let nb = self.netback.device_mut().expect("checked");
                let batch = nb.soft_start_run(&mut self.hv, q, 128).expect("soft_start");
                let evtchn = nb.port_of(q);
                let done = self.driver_cpus.run_on(q, now, batch.cost);
                if batch.notify {
                    let (n, c) = self.hv.evtchn_send(self.driver, evtchn).expect("channel");
                    let done = self.driver_cpus.run_on(q, done, c);
                    self.sched_irq(done, n);
                }
                if batch.delivered == 0 {
                    break; // either no frames queued or no Rx buffers posted
                }
                if !batch.more {
                    break;
                }
            }
        }
    }

    /// The guest endpoint's host stack: handles one delivered frame.
    fn guest_stack_rx(&mut self, now: Nanos, frame: Vec<u8>) {
        let Some(eth) = EthernetFrame::decode(&frame) else {
            return;
        };
        if eth.ethertype != EtherType::Ipv4 {
            return;
        }
        let Some(ip) = Ipv4Packet::decode(&eth.payload) else {
            return;
        };
        match ip.proto {
            IpProto::Icmp => {
                if let Some(msg) = IcmpMessage::decode(&ip.payload) {
                    if let IcmpMessage::EchoRequest { seq, .. } = msg {
                        if let Some(r) = self.hv.req.lookup(SlotClass::NetIcmp, seq as u64) {
                            let dom = self.guest.0;
                            self.hv.req.stamp_at(r, ReqStage::RxDeliver, dom, None, now);
                        }
                    }
                    if let Some(reply) = msg.reply() {
                        let rip =
                            Ipv4Packet::new(addrs::GUEST, ip.src, IpProto::Icmp, reply.encode());
                        let rframe = EthernetFrame::new(
                            eth.src,
                            self.guest_mac,
                            EtherType::Ipv4,
                            rip.encode(),
                        );
                        // ICMP handled in-stack: tiny cost.
                        self.guest_cpu_run(now, Nanos::from_nanos(500));
                        self.guest_send_frame(now, rframe.encode());
                    }
                }
            }
            IpProto::Udp => {
                let Some(udp) = UdpDatagram::decode(&ip.payload, ip.src, ip.dst) else {
                    self.metrics.drops += 1;
                    return;
                };
                self.metrics.guest_rx_bytes += udp.payload.len() as u64;
                self.metrics.guest_rx_msgs += 1;
                if self.recovery.record_first_byte(now) {
                    let guest = self.guest.0;
                    self.hv
                        .trace
                        .emit_with(guest, || EventKind::Milestone { what: "first_byte" });
                }
                let msg = UdpMsg {
                    src_ip: ip.src,
                    src_port: udp.src_port,
                    dst_port: udp.dst_port,
                    payload: udp.payload,
                };
                if let Some(mut app) = self.guest_app.take() {
                    let replies = app(now, &msg);
                    self.guest_app = Some(app);
                    self.emit_replies(now, Side::Guest, replies);
                }
            }
            _ => {}
        }
    }

    fn emit_replies(&mut self, now: Nanos, side: Side, replies: Vec<Reply>) {
        for r in replies {
            let ready = match side {
                Side::Guest => self.guest_cpu_run(now, r.cost),
                Side::Client => now + r.cost,
            };
            let unit = self.max_tx_unit;
            let chunks: Vec<Vec<u8>> = if r.payload.len() <= unit {
                vec![r.payload]
            } else {
                r.payload.chunks(unit).map(|c| c.to_vec()).collect()
            };
            for chunk in chunks {
                self.queue.schedule_at(
                    ready,
                    Event::AppSend {
                        side,
                        dst_ip: r.dst_ip,
                        dst_port: r.dst_port,
                        src_port: r.src_port,
                        payload: chunk,
                    },
                );
            }
        }
    }

    /// The client machine's host stack.
    fn client_stack_rx(&mut self, now: Nanos, frame: Vec<u8>) {
        let Some(eth) = EthernetFrame::decode(&frame) else {
            return;
        };
        if eth.ethertype != EtherType::Ipv4 {
            return;
        }
        let Some(ip) = Ipv4Packet::decode(&eth.payload) else {
            return;
        };
        match ip.proto {
            IpProto::Icmp => {
                if let Some(IcmpMessage::EchoReply { seq, .. }) = IcmpMessage::decode(&ip.payload) {
                    if let Some(t0) = self.icmp_sent.remove(&seq) {
                        self.metrics.ping_rtts.push_nanos(now - t0);
                        self.latency_hist.record(now - t0);
                    }
                    if let Some(r) = self.hv.req.take(SlotClass::NetIcmp, seq as u64) {
                        self.hv.req.finish_at(r, 0, now);
                    }
                }
            }
            IpProto::Udp => {
                let Some(udp) = UdpDatagram::decode(&ip.payload, ip.src, ip.dst) else {
                    self.metrics.drops += 1;
                    return;
                };
                self.metrics.client_rx_bytes += udp.payload.len() as u64;
                self.metrics.client_rx_msgs += 1;
                if self.recovery.record_first_byte(now) {
                    let guest = self.guest.0;
                    self.hv
                        .trace
                        .emit_with(guest, || EventKind::Milestone { what: "first_byte" });
                }
                let msg = UdpMsg {
                    src_ip: ip.src,
                    src_port: udp.src_port,
                    dst_port: udp.dst_port,
                    payload: udp.payload,
                };
                if let Some(mut app) = self.client_app.take() {
                    let replies = app(now, &msg);
                    self.client_app = Some(app);
                    self.emit_client_replies(now, replies);
                }
            }
            _ => {}
        }
    }

    fn emit_client_replies(&mut self, now: Nanos, replies: Vec<Reply>) {
        self.emit_replies(now, Side::Client, replies);
    }

    fn handle(&mut self, now: Nanos, ev: Event) {
        let _prof = kite_prof::span(phase_of(&ev));
        self.hv.trace.set_now(now);
        self.hv.req.set_now(now);
        match ev {
            Event::AppSend {
                side,
                dst_ip,
                dst_port,
                src_port,
                payload,
            } => match side {
                Side::Client => {
                    let frame = self.build_udp_frame(
                        addrs::CLIENT,
                        self.client_mac,
                        dst_ip,
                        dst_port,
                        src_port,
                        payload,
                    );
                    self.client_transmit(now, frame);
                }
                Side::Guest => {
                    let frame = self.build_udp_frame(
                        addrs::GUEST,
                        self.guest_mac,
                        dst_ip,
                        dst_port,
                        src_port,
                        payload,
                    );
                    self.guest_send_frame(now, frame);
                }
            },
            Event::ClientTxFrame(frame) => self.client_transmit(now, frame),
            Event::WireToServer(frame) => match self.nic.rx_enqueue(now, frame) {
                RxIrq::FireAt(t) => {
                    self.queue.schedule_at(t, Event::NicIrq);
                }
                RxIrq::AlreadyPending => {}
                RxIrq::Dropped => self.metrics.drops += 1,
            },
            Event::NicIrq => {
                if self.hung {
                    // The livelocked driver never services the interrupt;
                    // the NIC's receive ring overflows and the frames are
                    // lost on the floor, exactly like hardware would.
                    let lost = self.nic.drain_rx(now, usize::MAX).len() as u64;
                    self.metrics.drops += lost;
                    self.recovery.dropped_frames += lost;
                    if let Some(fire) = self.nic.rearm_irq(now) {
                        self.queue.schedule_at(fire, Event::NicIrq);
                    }
                    return;
                }
                // NIC interrupt in the driver domain: short handler, then
                // the stack pushes frames through the bridge toward VIFs.
                // The physical NIC's irq is pinned to vCPU 0.
                let idle = now.saturating_sub(self.driver_cpus.free_at(0));
                let wake = self.profile.idle_wake(idle);
                let handler_done =
                    self.driver_cpus
                        .run_on(0, now, wake + self.profile.irq_overhead);
                let frames = self.nic.drain_rx(now, 64);
                let mut per_frame = Nanos::ZERO;
                for f in &frames {
                    per_frame += self.profile.per_packet + Nanos(f.len() as u64 / 16);
                }
                let t = self.driver_cpus.run_on(0, handler_done, per_frame);
                let mut to_wire = Vec::new();
                for f in frames {
                    if self.hv.req.is_enabled() {
                        if let Some(r) = icmp_echo_seq(&f)
                            .and_then(|seq| self.hv.req.lookup(SlotClass::NetIcmp, seq as u64))
                        {
                            let dom = self.driver.0;
                            self.hv.req.stamp(r, ReqStage::NicRx, dom, None);
                        }
                    }
                    to_wire.extend(self.bridge_forward(now, self.if_port, f));
                }
                self.nic_transmit(t, to_wire);
                // The VIF callback woke soft_start (and pusher work may be
                // pending): run the netback threads.
                self.run_netback(t);
                if let Some(fire) = self.nic.rearm_irq(now) {
                    self.queue.schedule_at(fire, Event::NicIrq);
                }
            }
            Event::Irq { dom, port } => {
                let _ = self.hv.evtchn.clear_pending(dom, port);
                if dom == self.driver {
                    if !self.netback.is_connected() || self.hung {
                        return; // stale interrupt, or a livelocked handler
                    }
                    // Netback's event channel: the handler runs on the
                    // vCPU the owning queue is pinned to, then wakes the
                    // threads.
                    let nb = self.netback.device().expect("checked");
                    let q = (0..nb.queue_count())
                        .find(|&q| nb.port_of(q) == port)
                        .unwrap_or(0);
                    let cost = nb.irq_handler_cost();
                    let idle = now.saturating_sub(self.driver_cpus.free_at(q));
                    let wake = self.profile.idle_wake(idle);
                    let t = self.driver_cpus.run_on(q, now, wake + cost);
                    self.run_netback(t);
                } else if dom == self.guest {
                    if self.netfront.is_none() {
                        return; // stale interrupt for a retired device
                    }
                    let earliest = self.guest_last_end;
                    let wake = guest_idle_wake(now.saturating_sub(earliest));
                    // The guest vCPU wakes from halt first; everything the
                    // interrupt triggers happens after that latency.
                    let t = now + wake;
                    let (op, notifyq) = self
                        .netfront
                        .as_mut()
                        .expect("checked")
                        .on_irq(&mut self.hv)
                        .expect("netfront irq");
                    let mut done =
                        self.guest_cpu_run(now, wake + op.cost + self.profile.irq_overhead);
                    for q in notifyq {
                        let evtchn = self.netfront.as_ref().expect("checked").port_of(q);
                        // Tolerate a torn-down channel: the backend may
                        // have died without the frontend knowing yet.
                        if let Ok((n, c)) = self.hv.evtchn_send(self.guest, evtchn) {
                            done = self.guest_cpu_run(done, c);
                            self.sched_irq(done, n);
                        }
                    }
                    while let Some(frame) = self.netfront.as_mut().expect("checked").recv() {
                        self.guest_stack_rx(t, frame);
                    }
                    // Tx completions may have freed ring slots.
                    self.drain_guest_txq(t);
                }
            }
            Event::WireToClient(frame) => self.client_stack_rx(now, frame),
            Event::DriverCrash => {
                self.pending_faults = self.pending_faults.saturating_sub(1);
                self.kill_driver(now);
            }
            Event::DriverHang => {
                self.pending_faults = self.pending_faults.saturating_sub(1);
                self.hang_driver(now);
            }
            Event::QueueWedge(q) => {
                self.pending_faults = self.pending_faults.saturating_sub(1);
                if let Some(nb) = self.netback.device_mut() {
                    if q < nb.queue_count() {
                        nb.set_queue_wedged(q, true);
                        self.queue_wedged = true;
                        self.hv
                            .trace
                            .emit_with(self.driver.0, || EventKind::Milestone { what: "wedge" });
                    }
                }
            }
            Event::DriverRestarted => self.driver_restarted(now),
            Event::BeatTick => {
                // The heartbeat task runs inside the driver domain, so it
                // survives a livelock — but dies with the domain.
                if let Some(hb) = self.heartbeat.as_mut() {
                    let _ = hb.beat(&mut self.hv);
                }
                if self.watch_live() {
                    if let Some(mon) = self.monitor.as_ref() {
                        self.queue
                            .schedule_at(now + mon.config().heartbeat_interval, Event::BeatTick);
                    }
                }
            }
            Event::ProbeTick => {
                let Some(mut mon) = self.monitor.take() else {
                    return;
                };
                let samples: Vec<ProgressSample> = self
                    .netback
                    .device()
                    .map(|nb| {
                        nb.queue_progress(&self.hv)
                            .into_iter()
                            .map(|(consumed, pending)| ProgressSample { consumed, pending })
                            .collect()
                    })
                    .unwrap_or_default();
                let slo_report = slo::evaluate(&self.latency_hist, &self.slo_cfg);
                let slo_ok = !slo_report.breached;
                if slo_report.breached {
                    // Name the stage dominating the tail while it breaches
                    // (needs request tracing; None otherwise).
                    self.last_breach = slo::attribute(&self.hv.req);
                }
                let verdict = mon.probe_queues(&mut self.hv, now, &samples, slo_ok);
                let interval = mon.config().probe_interval;
                self.monitor = Some(mon);
                if verdict.is_failed() {
                    self.detect_failure(now);
                }
                if self.watch_live() {
                    self.queue.schedule_at(now + interval, Event::ProbeTick);
                }
            }
            Event::SampleTick => {
                self.sample_now(now);
                // Re-arm only while the workload is still producing
                // events, so quiescence is reachable.
                if let Some(every) = self.sampler.as_ref().map(|s| s.interval()) {
                    if !self.queue.is_empty() {
                        self.queue.schedule_at(now + every, Event::SampleTick);
                    }
                }
            }
        }
    }

    /// Whether the watchdog's ticks should keep rescheduling themselves.
    ///
    /// A real watchdog polls forever; here the ticks stay armed only
    /// while a fault can still need detecting (one is scheduled, the
    /// backend is hung/down, or recovery is in flight) so that
    /// [`NetSystem::run_to_quiescence`] terminates once the system
    /// settles into a healthy steady state.
    fn watch_live(&self) -> bool {
        self.mode == DetectionMode::Watchdog
            && (self.pending_faults > 0
                || self.hung
                || self.queue_wedged
                || self.recovering
                || !self.netback.is_connected())
    }

    // ---- measurement accessors ------------------------------------------

    /// Events processed (diagnostics).
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// The scheduler backend this system's event loop runs on.
    pub fn scheduler_kind(&self) -> SchedulerKind {
        self.queue.kind()
    }

    /// Turns on structured tracing with an event-ring capacity of `cap`.
    pub fn enable_tracing(&mut self, cap: usize) {
        self.hv.trace.enable(cap);
    }

    /// Turns on per-request stage tracing: every `sample_every`-th
    /// injected request is tagged with a [`kite_xen::ReqId`] and followed
    /// through the stack, feeding per-stage latency histograms, the
    /// `repro lat` waterfalls and Perfetto flow arrows.
    pub fn enable_req_tracing(&mut self, sample_every: u64) {
        self.hv.req.enable(sample_every, DEFAULT_REQ_CAPACITY);
    }

    /// Stage attribution of the most recent SLO breach the watchdog saw,
    /// when request tracing was on to supply per-stage histograms.
    pub fn last_breach(&self) -> Option<&BreachAttribution> {
        self.last_breach.as_ref()
    }

    /// The histogram of client-observed echo RTTs (the same samples the
    /// SLO monitor evaluates; mirrors `metrics.ping_rtts`).
    pub fn latency_histogram(&self) -> &Histogram {
        &self.latency_hist
    }

    /// Collects the scenario's measurement taps, lifetime netback stats
    /// and recovery accounting into one named snapshot.
    pub fn metrics_snapshot(&self, scenario: impl Into<String>) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::new(scenario);
        snap.push_int("client_rx_bytes", "bytes", self.metrics.client_rx_bytes);
        snap.push_int("client_rx_msgs", "count", self.metrics.client_rx_msgs);
        snap.push_int("guest_rx_bytes", "bytes", self.metrics.guest_rx_bytes);
        snap.push_int("guest_rx_msgs", "count", self.metrics.guest_rx_msgs);
        snap.push_int("drops", "count", self.metrics.drops);
        for (q, depth) in self.rx_queue_depths().into_iter().enumerate() {
            snap.push_int(format!("rx_queue_depth_q{q}"), "count", depth as u64);
        }
        self.netback_stats().append_metrics(&mut snap);
        self.recovery.append_metrics(&mut snap);
        snap
    }

    /// Driver-domain mean vCPU utilization over a window.
    pub fn driver_cpu_percent(&self, window: Nanos) -> f64 {
        self.driver_cpus.utilization_percent(window)
    }

    /// Guest mean vCPU utilization over a window (sysstat style).
    pub fn guest_cpu_percent(&self, window: Nanos) -> f64 {
        let sum: f64 = self
            .guest_cpus
            .iter()
            .map(|c| c.utilization_percent(window))
            .sum();
        sum / self.guest_cpus.len() as f64
    }

    /// Netback statistics, summed across backend incarnations.
    pub fn netback_stats(&self) -> kite_core::NetbackStats {
        let mut s = self.nb_stats_base;
        if let Some(nb) = self.netback.device() {
            s.merge(&nb.stats());
        }
        s
    }

    /// Switches netback between batched and single-op grant copies; the
    /// choice survives backend restarts.
    pub fn set_copy_mode(&mut self, mode: kite_xen::CopyMode) {
        self.copy_mode = mode;
        if let Some(nb) = self.netback.device_mut() {
            nb.set_copy_mode(mode);
        }
    }

    /// Frames the frontend dropped for ring exhaustion, summed across
    /// device incarnations.
    pub fn guest_tx_dropped(&self) -> u64 {
        self.nf_dropped_base + self.netfront.as_ref().map_or(0, |nf| nf.tx_dropped())
    }

    /// The driver domain id.
    pub fn driver_domain(&self) -> DomainId {
        self.driver
    }

    /// The guest domain id.
    pub fn guest_domain(&self) -> DomainId {
        self.guest
    }

    /// Freezes a `kitetop` view of every domain (dead incarnations
    /// included) at the current virtual time.
    pub fn top_snapshot(&self) -> TopSnapshot {
        let at = self.queue.now();
        let secs = at.as_secs_f64();
        let stats = self.netback_stats();
        let mut rows: Vec<TopRow> = self
            .hv
            .domains
            .iter_all()
            .map(|d| {
                let is_driver = d.id == self.driver;
                let (health, beat_age) = match &self.monitor {
                    Some(m) if m.target() == d.id => {
                        let h = match m.state() {
                            HealthState::Suspect { missed } => format!("suspect({missed})"),
                            s => s.name().to_string(),
                        };
                        (h, Some(m.heartbeat_age(at)))
                    }
                    _ => ("-".to_string(), None),
                };
                let (ring_consumed, ring_pending) = match self.netback.device() {
                    Some(nb) if is_driver => nb.progress(&self.hv),
                    _ => (0, 0),
                };
                let (req_per_sec, mbytes_per_sec) = if is_driver && secs > 0.0 {
                    (
                        (stats.tx_packets + stats.rx_packets) as f64 / secs,
                        (stats.tx_bytes + stats.rx_bytes) as f64 / 1e6 / secs,
                    )
                } else {
                    (0.0, 0.0)
                };
                TopRow {
                    dom: d.id.0,
                    name: d.name.clone(),
                    kind: match d.kind {
                        DomainKind::Dom0 => "dom0",
                        DomainKind::Driver => "driver",
                        DomainKind::Guest => "guest",
                    },
                    alive: d.state != DomainState::Dead,
                    health,
                    beat_age,
                    ring_pending,
                    ring_consumed,
                    grants: self.hv.grants.live_grants(d.id),
                    maps: self.hv.grants.active_maps(d.id),
                    evtchns: self.hv.evtchn.open_ports(d.id),
                    req_per_sec,
                    mbytes_per_sec,
                    rx_dropped: if is_driver { stats.rx_dropped } else { 0 },
                    gso_frames: if is_driver {
                        stats.gso_tx_frames + stats.lro_rx_frames
                    } else {
                        0
                    },
                    rx_qdepth: if is_driver {
                        self.rx_queue_depths().iter().map(|&d| d as u64).collect()
                    } else {
                        Vec::new()
                    },
                    p99_us: self
                        .hv
                        .req
                        .dom_hist(d.id.0)
                        .filter(|h| h.count() > 0)
                        .map(|h| h.quantile(0.99).as_nanos() as f64 / 1000.0),
                }
            })
            .collect();
        rows.sort_by_key(|r| r.dom);
        TopSnapshot { at, rows }
    }
}
