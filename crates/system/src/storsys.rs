//! The full storage-domain scenario: guest application ⇄ blkfront ⇄
//! Kite/Linux driver domain (blkback) ⇄ NVMe device.
//!
//! Workloads submit logical I/Os (any size); the system splits them into
//! ring requests bounded by the negotiated features (44 KiB direct or
//! 128 KiB with 32 indirect segments), applies ring backpressure, and
//! reports completions to a workload-installed handler that can keep each
//! simulated worker thread's loop going (closed-loop benchmarks).

use std::collections::{HashMap, VecDeque};

use kite_core::{
    provision_device, BackendManager, BlkbackConfig, BlkbackInstance, BlkbackStats, BlkbackTuning,
    BlockApp, DeviceLifecycle, RecoveryStats,
};
use kite_devices::{Device, Nvme};
use kite_frontends::Blkfront;
use kite_health::{
    slo, BreachAttribution, DetectionMode, HealthMonitor, HealthState, HeartbeatPublisher,
    MonitorConfig, ProgressSample, SloConfig, TopRow, TopSnapshot,
};
use kite_rumprun::BootSequence;
use kite_sim::{Cpu, CpuPool, EventSched, Histogram, Nanos, Pcg, Scheduler, SchedulerKind};
use kite_trace::{EventKind, MetricsSnapshot, SampleKind, TimeSeriesSampler, DEFAULT_REQ_CAPACITY};
use kite_xen::xenbus::MQ_MAX_QUEUES_KEY;
use kite_xen::{
    Bdf, CopyMode, DeviceKind, DevicePaths, DomainId, DomainKind, DomainState, FaultPlan,
    Hypervisor, Notification, Port, QueueMode, ReqId, ReqStage, SlotClass, XenbusState,
};

use crate::config::SystemConfig;
pub use crate::netsys::BackendOs;

/// A logical I/O a workload submits.
#[derive(Clone, Debug)]
pub enum IoKind {
    /// Read `len` bytes at `sector`.
    Read {
        /// Starting 512-byte sector.
        sector: u64,
        /// Length in bytes (multiple of 512).
        len: usize,
    },
    /// Write bytes at `sector`.
    Write {
        /// Starting 512-byte sector.
        sector: u64,
        /// The data (length a multiple of 512).
        data: Vec<u8>,
    },
    /// Flush the disk cache.
    Flush,
}

/// A workload I/O with its tag.
#[derive(Clone, Debug)]
pub struct IoOp {
    /// Workload-chosen tag returned at completion.
    pub tag: u64,
    /// The operation.
    pub kind: IoKind,
}

/// A completed logical I/O.
#[derive(Debug)]
pub struct IoDone {
    /// The workload tag.
    pub tag: u64,
    /// All chunks succeeded.
    pub ok: bool,
    /// Assembled data for reads.
    pub data: Option<Vec<u8>>,
    /// When the logical I/O was submitted.
    pub submitted: Nanos,
}

/// Completion handler: observes a finished I/O, returns follow-up ops
/// (the closed-loop worker pattern).
pub type IoHandler = Box<dyn FnMut(Nanos, &IoDone) -> Vec<IoOp>>;

enum Event {
    Irq {
        dom: DomainId,
        port: Port,
    },
    // `epoch` guards against completions of a crashed backend incarnation
    // hitting a replacement that happens to reuse the same request id.
    /// Error response for a request that failed validation and never
    /// reached the device.
    BlkError {
        req_id: u64,
        ring: usize,
        epoch: u64,
    },
    /// NVMe completion interrupt: a CQ entry on `ring`'s queue pair came
    /// due; the reap runs on the vCPU its MSI-X vector is steered to.
    NvmeCq {
        ring: usize,
        epoch: u64,
    },
    Submit(IoOp),
    DriverCrash,
    DriverHang,
    /// Wedge one blkback ring (its request thread stops running).
    QueueWedge(usize),
    DriverRestarted,
    BeatTick,
    ProbeTick,
    /// The time-series sampler takes its next snapshot.
    SampleTick,
}

/// Profiling phase for an event dispatch, by event kind.
fn phase_of(ev: &Event) -> kite_prof::Phase {
    use kite_prof::Phase;
    match ev {
        Event::Submit(_) => Phase::DispatchBlkSubmit,
        Event::NvmeCq { .. } | Event::BlkError { .. } => Phase::DispatchBlkComplete,
        Event::Irq { .. } => Phase::DispatchIrq,
        Event::DriverCrash | Event::DriverHang | Event::QueueWedge(_) => Phase::DispatchFault,
        Event::DriverRestarted => Phase::DispatchRecovery,
        Event::BeatTick | Event::ProbeTick => Phase::DispatchHealthTick,
        Event::SampleTick => Phase::DispatchSample,
    }
}

#[derive(Debug)]
enum ChunkKind {
    Read { sector: u64, len: usize },
    Write { sector: u64, data: Vec<u8> },
    Flush,
}

#[derive(Debug)]
struct Chunk {
    tag: u64,
    order: usize,
    kind: ChunkKind,
}

struct TagState {
    remaining: usize,
    ok: bool,
    chunks: Vec<(usize, Vec<u8>)>, // (order, data) for reads
    want_data: bool,
    submitted: Nanos,
    /// Request-tracing sample following this logical I/O, when tagged.
    req: Option<ReqId>,
}

/// Storage metrics.
#[derive(Default)]
pub struct StorMetrics {
    /// Logical I/Os completed.
    pub ios: u64,
    /// Bytes read (logical).
    pub read_bytes: u64,
    /// Bytes written (logical).
    pub write_bytes: u64,
    /// Latency stats over logical I/Os.
    pub latency: kite_sim::OnlineStats,
}

/// The storage scenario system.
pub struct StorSystem {
    /// The simulated Xen machine.
    pub hv: Hypervisor,
    /// Which OS the driver domain runs.
    pub os: BackendOs,
    queue: EventSched<Event>,
    driver: DomainId,
    guest: DomainId,
    queue_mode: QueueMode,
    driver_cpus: CpuPool,
    guest_cpus: Vec<Cpu>,
    guest_rr: usize,
    guest_last_end: Nanos,
    /// The NVMe device (sparse real contents).
    pub nvme: Nvme,
    nvme_bdf: Bdf,
    blkback: DeviceLifecycle<BlkbackInstance>,
    bb_epoch: u64,
    bb_stats_base: BlkbackStats,
    copy_mode: CopyMode,
    blkfront: Option<Blkfront>,
    // Negotiated per-request ceiling, kept so logical ops submitted
    // during an outage still chunk correctly.
    max_req_bytes: usize,
    /// The storage domain's status application.
    pub blockapp: BlockApp,
    mgr: BackendManager,
    paths: DevicePaths,
    // req_id -> in-flight chunk (kept whole so a crash can replay it)
    req_map: HashMap<u64, Chunk>,
    tags: HashMap<u64, TagState>,
    pendq: VecDeque<Chunk>,
    handler: Option<IoHandler>,
    boot: BootSequence,
    /// Crash/restart recovery accounting.
    pub recovery: RecoveryStats,
    /// Measurement taps.
    pub metrics: StorMetrics,
    /// Deterministic RNG stream.
    pub rng: Pcg,
    events_processed: u64,
    mode: DetectionMode,
    monitor: Option<HealthMonitor>,
    heartbeat: Option<HeartbeatPublisher>,
    /// The driver domain is livelocked: alive and beating, data path dead.
    hung: bool,
    /// One ring's request thread is wedged (fault injection); keeps the
    /// watchdog ticking after the fault fires.
    queue_wedged: bool,
    /// A detected outage is being recovered (detect → reconnect window).
    recovering: bool,
    /// Injected fault events still scheduled; keeps the watchdog ticking.
    pending_faults: u32,
    slo_cfg: SloConfig,
    latency_hist: Histogram,
    sampler: Option<TimeSeriesSampler>,
    /// Stage attribution of the most recent SLO p99 breach the watchdog
    /// observed (request tracing on), for `kitetop`/health reporting.
    last_breach: Option<BreachAttribution>,
}

impl StorSystem {
    /// Builds the scenario: a 500 GB-class NVMe passed through to the
    /// driver domain, blkfront in the guest, handshake to `Connected`.
    /// Shorthand for `SystemConfig::new(os, seed).build_stor()`.
    pub fn new(os: BackendOs, seed: u64) -> StorSystem {
        SystemConfig::new(os, seed).build_stor()
    }

    /// Builds the scenario with `queues` blkback rings.
    ///
    /// Thin compatibility wrapper over [`SystemConfig`]; new code should
    /// use the builder.
    pub fn new_with_queues(os: BackendOs, seed: u64, queues: QueueMode) -> StorSystem {
        SystemConfig::new(os, seed).queue_mode(queues).build_stor()
    }

    /// Builds the scenario with explicit blkback tuning (ablations).
    ///
    /// Thin compatibility wrapper over [`SystemConfig`]; new code should
    /// use the builder.
    pub fn with_tuning(os: BackendOs, seed: u64, tuning: BlkbackTuning) -> StorSystem {
        SystemConfig::new(os, seed).tuning(tuning).build_stor()
    }

    /// Builds the scenario with explicit tuning and ring count.
    ///
    /// Thin compatibility wrapper over [`SystemConfig`]; new code should
    /// use the builder.
    pub fn with_tuning_queues(
        os: BackendOs,
        seed: u64,
        tuning: BlkbackTuning,
        queues: QueueMode,
    ) -> StorSystem {
        SystemConfig::new(os, seed)
            .tuning(tuning)
            .queue_mode(queues)
            .build_stor()
    }

    /// Builds the scenario from a [`SystemConfig`]: blkback rings on a
    /// driver domain with one vCPU per ring (multi-queue ablations).
    pub(crate) fn from_config(cfg: &SystemConfig) -> StorSystem {
        let (os, seed, queues, tuning) = (cfg.os, cfg.seed, cfg.queue_mode, cfg.tuning);
        let nrings = queues.queues();
        let mut profile = os.profile();
        // Seed-derived run-to-run noise (see NetSystem::new).
        let mut jrng = Pcg::new(seed, 0x6a69747465725f32);
        profile.per_block_request = jrng.jitter(profile.per_block_request, 0.004);
        profile.idle_wake_cap = jrng.jitter(profile.idle_wake_cap, 0.004);
        // `profile` parameterizes blkback; StorSystem itself needs no copy.
        let mut hv = Hypervisor::new();
        hv.create_domain("Domain-0", DomainKind::Dom0, 8192, 4);
        let driver = hv.create_domain(
            match os {
                BackendOs::Kite => "blkbackend",
                BackendOs::Linux => "ubuntu-dd",
            },
            DomainKind::Driver,
            if os == BackendOs::Kite { 1024 } else { 2048 },
            nrings,
        );
        let guest = hv.create_domain("guest", DomainKind::Guest, 5120, 22);

        let bdf: kite_xen::Bdf = "04:00.0".parse().expect("static BDF");
        hv.pci.add_device(kite_xen::PciDevice {
            bdf,
            class: kite_xen::PciClass::Nvme,
            name: "Samsung 970 EVO Plus 500GB".into(),
        });
        hv.pci.make_assignable(bdf).expect("fresh device");
        hv.pci.assign(bdf, driver).expect("assignable");

        // Scaled capacity: the data plane is sparse-real; 16 GiB of
        // addressable space is ample for the scaled workloads.
        let mut nvme = match &cfg.nvme_profile {
            Some(profile) => Nvme::with_profile(16, profile.clone()),
            None => Nvme::new(16),
        };
        if let Some(max) = cfg.nvme_max_io_queues {
            nvme = nvme.with_max_io_queues(max as usize);
        }
        let blockapp = BlockApp::start(&mut hv, driver, nvme.sectors).expect("blockapp");

        let mut mgr = BackendManager::new(driver, DeviceKind::Vbd);
        mgr.start(&mut hv).expect("watch");
        let paths = DevicePaths::new(guest, driver, DeviceKind::Vbd, 0);
        provision_device(&mut hv, &paths).expect("provision");
        if nrings > 1 {
            // The toolstack advertises the backend's ring budget before
            // the frontend negotiates.
            let be = paths.backend();
            hv.store
                .write(
                    DomainId::DOM0,
                    None,
                    &format!("{be}/{MQ_MAX_QUEUES_KEY}"),
                    &nrings.to_string(),
                )
                .expect("advertise rings");
        }
        mgr.drain_events(&mut hv).expect("scan");
        let mut blkfront =
            Blkfront::connect_with_queues(&mut hv, &paths, nrings).expect("blkfront");
        let ready = mgr.drain_events(&mut hv).expect("events");
        assert_eq!(ready.len(), 1, "frontend discovered");
        let bb_cfg = BlkbackConfig {
            profile: profile.clone(),
            tuning,
            device_sectors: nvme.sectors,
        };
        let mut blkback: DeviceLifecycle<BlkbackInstance> =
            DeviceLifecycle::new(ready[0].clone(), bb_cfg);
        blkback.connect(&mut hv).expect("blkback");
        blkfront.read_features(&mut hv, &paths).expect("features");
        let max_req_bytes = blkfront.max_request_bytes();
        hv.switch_state(guest, &paths.frontend_state(), XenbusState::Connected)
            .expect("frontend connect");

        StorSystem {
            hv,
            os,
            queue: EventSched::new(cfg.scheduler),
            driver,
            guest,
            queue_mode: queues,
            driver_cpus: CpuPool::new(nrings as usize),
            guest_cpus: (0..22).map(|_| Cpu::new()).collect(),
            guest_rr: 0,
            guest_last_end: Nanos::ZERO,
            nvme,
            nvme_bdf: bdf,
            blkback,
            bb_epoch: 0,
            bb_stats_base: BlkbackStats::default(),
            copy_mode: CopyMode::default(),
            blkfront: Some(blkfront),
            max_req_bytes,
            blockapp,
            mgr,
            paths,
            req_map: HashMap::new(),
            tags: HashMap::new(),
            pendq: VecDeque::new(),
            handler: None,
            boot: os.boot(),
            recovery: RecoveryStats::default(),
            metrics: StorMetrics::default(),
            rng: Pcg::seeded(seed),
            events_processed: 0,
            mode: DetectionMode::Oracle,
            monitor: None,
            heartbeat: None,
            hung: false,
            queue_wedged: false,
            recovering: false,
            pending_faults: 0,
            slo_cfg: SloConfig::default(),
            latency_hist: Histogram::default(),
            last_breach: None,
            sampler: None,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> Nanos {
        self.queue.now()
    }

    /// Installs the completion handler.
    pub fn set_handler(&mut self, h: IoHandler) {
        self.handler = Some(h);
    }

    /// Schedules a logical I/O submission at `t`.
    pub fn submit_at(&mut self, t: Nanos, op: IoOp) {
        self.queue.schedule_at(t, Event::Submit(op));
    }

    /// Schedules a driver-domain crash at `t` (kill injection).
    pub fn crash_driver_at(&mut self, t: Nanos) {
        self.pending_faults += 1;
        self.queue.schedule_at(t, Event::DriverCrash);
    }

    /// Schedules a driver-domain livelock at `t` (hang injection).
    pub fn hang_driver_at(&mut self, t: Nanos) {
        self.pending_faults += 1;
        self.queue.schedule_at(t, Event::DriverHang);
    }

    /// Schedules wedging ring `q` at `t`: that ring's request thread
    /// stops running while the rest of the backend stays healthy. Only
    /// per-queue ring-progress probing can catch it.
    pub fn wedge_queue_at(&mut self, t: Nanos, q: usize) {
        self.pending_faults += 1;
        self.queue.schedule_at(t, Event::QueueWedge(q));
    }

    /// The configured ring mode.
    pub fn queue_mode(&self) -> QueueMode {
        self.queue_mode
    }

    /// Rings on the live backend (0 while the driver domain is down).
    pub fn queue_count(&self) -> usize {
        self.blkback.device().map_or(0, |bb| bb.ring_count())
    }

    /// Arms a fault plan: per-op fault rates go live on the hypervisor,
    /// and `kill_at` / `hang_at` times (if set) schedule the
    /// driver-domain crash or livelock.
    pub fn inject_faults(&mut self, mut plan: FaultPlan) {
        if let Some(t) = plan.take_kill() {
            self.crash_driver_at(t);
        }
        if let Some(t) = plan.take_hang() {
            self.hang_driver_at(t);
        }
        self.hv.faults = plan;
    }

    /// Switches failure detection from the oracle to the active watchdog:
    /// the driver domain starts publishing heartbeats and Dom0 starts
    /// probing them (plus ring progress and the SLO). Call before
    /// injecting faults so the first probe precedes the first fault.
    pub fn enable_watchdog(&mut self, cfg: MonitorConfig) {
        let now = self.queue.now();
        self.mode = DetectionMode::Watchdog;
        self.monitor = Some(HealthMonitor::new(DomainId::DOM0, self.driver, cfg, now));
        self.heartbeat = Some(HeartbeatPublisher::new(self.driver));
        self.queue
            .schedule_at(now + cfg.heartbeat_interval, Event::BeatTick);
        self.queue
            .schedule_at(now + cfg.probe_interval, Event::ProbeTick);
    }

    /// Sets the request-latency SLO the watchdog folds into its verdict.
    pub fn set_slo(&mut self, cfg: SloConfig) {
        self.slo_cfg = cfg;
    }

    /// Starts the time-series sampler: every `every` of virtual time a
    /// `SampleTick` snapshots I/O counters (as deltas), queue
    /// occupancy gauges, and the watchdog health state into a bounded
    /// ring of `capacity` samples (oldest evicted first). The tick
    /// re-arms only while other events are still pending so
    /// [`run_to_quiescence`](Self::run_to_quiescence) terminates.
    pub fn enable_sampling(&mut self, every: Nanos, capacity: usize) {
        let sampler = TimeSeriesSampler::new(every, capacity)
            .with_column("ios", SampleKind::Counter)
            .with_column("read_bytes", SampleKind::Counter)
            .with_column("write_bytes", SampleKind::Counter)
            .with_column("requests", SampleKind::Counter)
            .with_column("in_flight", SampleKind::Gauge)
            .with_column("pendq", SampleKind::Gauge)
            .with_column("health", SampleKind::Gauge);
        self.sampler = Some(sampler);
        let now = self.queue.now();
        self.queue.schedule_at(now + every, Event::SampleTick);
    }

    /// The time series recorded by [`enable_sampling`](Self::enable_sampling).
    pub fn sampler(&self) -> Option<&TimeSeriesSampler> {
        self.sampler.as_ref()
    }

    fn sample_now(&mut self, at: Nanos) {
        let Some(mut sampler) = self.sampler.take() else {
            return;
        };
        let stats = self.blkback_stats();
        let health = match self.health() {
            None | Some(HealthState::Healthy) => 0u64,
            Some(HealthState::Suspect { .. }) => 1,
            _ => 2,
        };
        let raw = [
            self.metrics.ios,
            self.metrics.read_bytes,
            self.metrics.write_bytes,
            stats.requests,
            self.req_map.len() as u64,
            self.pendq.len() as u64,
            health,
        ];
        sampler.record(at, &raw);
        self.sampler = Some(sampler);
    }

    /// The active failure-detection mode.
    pub fn detection_mode(&self) -> DetectionMode {
        self.mode
    }

    /// The health monitor's current verdict, when the watchdog is on.
    pub fn health(&self) -> Option<HealthState> {
        self.monitor.as_ref().map(|m| m.state())
    }

    /// Whether the backend is currently up and serving.
    pub fn backend_alive(&self) -> bool {
        self.blkback.is_connected() && !self.hung
    }

    /// Runs the event loop until `deadline`.
    pub fn run_until(&mut self, deadline: Nanos) {
        while let Some(t) = self.queue.peek_time() {
            if t > deadline {
                break;
            }
            let (now, ev) = self.queue.pop().expect("peeked");
            self.events_processed += 1;
            self.handle(now, ev);
        }
    }

    /// Runs until all events drain.
    pub fn run_to_quiescence(&mut self) {
        while let Some((now, ev)) = self.queue.pop() {
            self.events_processed += 1;
            self.handle(now, ev);
        }
    }

    /// Outstanding logical I/Os.
    pub fn outstanding(&self) -> usize {
        self.tags.len()
    }

    /// Blkback statistics, summed across backend incarnations.
    pub fn blkback_stats(&self) -> kite_core::BlkbackStats {
        let mut s = self.bb_stats_base;
        if let Some(bb) = self.blkback.device() {
            s.merge(&bb.stats());
        }
        s
    }

    /// Switches blkback between batched and single-op grant copies; the
    /// choice survives backend restarts.
    pub fn set_copy_mode(&mut self, mode: kite_xen::CopyMode) {
        self.copy_mode = mode;
        if let Some(bb) = self.blkback.device_mut() {
            bb.set_copy_mode(mode);
        }
    }

    /// Driver-domain mean vCPU utilization over a window.
    pub fn driver_cpu_percent(&self, window: Nanos) -> f64 {
        self.driver_cpus.utilization_percent(window)
    }

    /// Events processed.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// The scheduler backend this system's event loop runs on.
    pub fn scheduler_kind(&self) -> SchedulerKind {
        self.queue.kind()
    }

    /// Turns on structured tracing with an event-ring capacity of `cap`.
    pub fn enable_tracing(&mut self, cap: usize) {
        self.hv.trace.enable(cap);
    }

    /// Turns on per-request stage tracing: every `sample_every`-th
    /// submitted logical I/O is tagged with a [`kite_xen::ReqId`] and
    /// followed through the stack, feeding per-stage latency histograms,
    /// the `repro lat` waterfalls and Perfetto flow arrows.
    pub fn enable_req_tracing(&mut self, sample_every: u64) {
        self.hv.req.enable(sample_every, DEFAULT_REQ_CAPACITY);
    }

    /// Stage attribution of the most recent SLO breach the watchdog saw,
    /// when request tracing was on to supply per-stage histograms.
    pub fn last_breach(&self) -> Option<&BreachAttribution> {
        self.last_breach.as_ref()
    }

    /// Collects the scenario's measurement taps, lifetime blkback stats
    /// and recovery accounting into one named snapshot.
    pub fn metrics_snapshot(&self, scenario: impl Into<String>) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::new(scenario);
        snap.push_int("ios", "count", self.metrics.ios);
        snap.push_int("logical_read_bytes", "bytes", self.metrics.read_bytes);
        snap.push_int("logical_write_bytes", "bytes", self.metrics.write_bytes);
        snap.push_float("mean_latency", "ns", self.metrics.latency.mean());
        self.blkback_stats().append_metrics(&mut snap);
        self.recovery.append_metrics(&mut snap);
        snap
    }

    // ---- internals -----------------------------------------------------

    fn guest_cpu_run(&mut self, now: Nanos, cost: Nanos) -> Nanos {
        let mut best = self.guest_rr % self.guest_cpus.len();
        let mut best_free = Nanos::MAX;
        for (i, c) in self.guest_cpus.iter().enumerate() {
            if c.free_at() < best_free {
                best_free = c.free_at();
                best = i;
            }
        }
        self.guest_rr += 1;
        let done = self.guest_cpus[best].run(now, cost);
        self.guest_last_end = self.guest_last_end.max(done);
        done
    }

    fn notify_backend(&mut self, done: Nanos, q: usize) {
        let Some(port) = self.blkfront.as_ref().map(|f| f.port_of(q)) else {
            return;
        };
        // The channel dies with the backend domain: a notify raised
        // during an undetected-outage window is simply lost.
        let Ok((n, c)) = self.hv.evtchn_send(self.guest, port) else {
            return;
        };
        let done = self.guest_cpu_run(done, c);
        self.sched_irq(done, n);
    }

    /// Schedules delivery of an event-channel notification raised at
    /// `done`: the one pattern every evtchn kick funnels through.
    fn sched_irq(&mut self, done: Nanos, n: Option<Notification>) {
        if let Some(n) = n {
            let delay = self.hv.irq_delay();
            self.queue.schedule_at(
                done + delay,
                Event::Irq {
                    dom: n.domain,
                    port: n.port,
                },
            );
        }
    }

    /// Splits a logical op into ring-sized chunks.
    fn chunks_of(&self, op: &IoOp) -> Vec<Chunk> {
        let max = self.max_req_bytes;
        match &op.kind {
            IoKind::Read { sector, len } => {
                let len = len.div_ceil(512) * 512;
                let mut out = Vec::new();
                let mut off = 0usize;
                let mut order = 0usize;
                while off < len {
                    let n = (len - off).min(max);
                    out.push(Chunk {
                        tag: op.tag,
                        order,
                        kind: ChunkKind::Read {
                            sector: sector + (off / 512) as u64,
                            len: n,
                        },
                    });
                    off += n;
                    order += 1;
                }
                out
            }
            IoKind::Write { sector, data } => {
                let mut data = data.clone();
                let padded = data.len().div_ceil(512) * 512;
                data.resize(padded, 0);
                let mut out = Vec::new();
                let mut off = 0usize;
                let mut order = 0usize;
                while off < data.len() {
                    let n = (data.len() - off).min(max);
                    out.push(Chunk {
                        tag: op.tag,
                        order,
                        kind: ChunkKind::Write {
                            sector: sector + (off / 512) as u64,
                            data: data[off..off + n].to_vec(),
                        },
                    });
                    off += n;
                    order += 1;
                }
                out
            }
            IoKind::Flush => vec![Chunk {
                tag: op.tag,
                order: 0,
                kind: ChunkKind::Flush,
            }],
        }
    }

    /// Registers a logical op (creating its completion state) and queues
    /// its chunks; as many as fit go straight into the ring.
    fn try_submit(&mut self, now: Nanos, op: IoOp, submitted: Nanos) -> bool {
        let want_data = matches!(op.kind, IoKind::Read { .. });
        if let IoKind::Write { data, .. } = &op.kind {
            self.metrics.write_bytes += data.len() as u64;
        }
        let chunks = self.chunks_of(&op);
        // Injection point for request tracing: the sampler decides here
        // whether this logical I/O is followed stage by stage. The guest
        // application issues it, so the Inject stamp books to the guest.
        self.hv.req.set_now(submitted);
        let req = self.hv.req.admit(self.guest.0);
        self.tags.insert(
            op.tag,
            TagState {
                remaining: chunks.len(),
                ok: true,
                chunks: Vec::new(),
                want_data,
                submitted,
                req,
            },
        );
        for c in chunks {
            self.pendq.push_back(c);
        }
        self.drain_pendq(now);
        true
    }

    /// Pushes parked chunks into the ring while space allows. During an
    /// outage the queue just accumulates; the reconnect drains it.
    fn drain_pendq(&mut self, now: Nanos) {
        if self.blkfront.is_none() {
            return;
        }
        let mut notify: std::collections::BTreeSet<usize> = std::collections::BTreeSet::new();
        let mut cost = Nanos::ZERO;
        while let Some(c) = self.pendq.front() {
            let bf = self.blkfront.as_mut().expect("checked");
            let res = match &c.kind {
                ChunkKind::Read { sector, len } => bf.submit_read(&mut self.hv, *sector, *len),
                ChunkKind::Write { sector, data } => bf.submit_write(&mut self.hv, *sector, data),
                ChunkKind::Flush => bf.submit_flush(&mut self.hv),
            };
            match res {
                Ok((id, fo)) => {
                    let c = self.pendq.pop_front().expect("peeked");
                    if let Some(r) = self.tags.get(&c.tag).and_then(|ts| ts.req) {
                        // First chunk's ring entry defines the submit leg;
                        // later chunks only map so the backend can find
                        // the sample (first-touch keeps one stamp).
                        self.hv.req.map(SlotClass::BlkReq, id, r);
                        let bf = self.blkfront.as_ref().expect("checked");
                        let qid =
                            (bf.queue_count() > 1).then(|| bf.ring_of(id).unwrap_or(0) as u16);
                        let dom = self.guest.0;
                        self.hv.req.stamp_at(r, ReqStage::RingSubmit, dom, qid, now);
                    }
                    if fo.notify {
                        let q = self
                            .blkfront
                            .as_ref()
                            .expect("checked")
                            .ring_of(id)
                            .unwrap_or(0);
                        notify.insert(q);
                    }
                    self.req_map.insert(id, c);
                    cost += fo.cost;
                }
                Err(kite_xen::XenError::RingFull) => break,
                Err(e) => panic!("unexpected submit error: {e}"),
            }
        }
        if cost > Nanos::ZERO {
            self.guest_cpu_run(now, cost);
        }
        for q in notify {
            self.notify_backend(now, q);
        }
    }

    fn run_blkback(&mut self, now: Nanos) {
        if !self.blkback.is_connected() || self.hung {
            return; // driver domain down (or livelocked: thread never runs)
        }
        // Each ring's request thread is pinned to its own driver vCPU, so
        // the rings drain concurrently.
        let nrings = self.blkback.device().expect("checked").ring_count();
        for q in 0..nrings {
            loop {
                let bb = self.blkback.device_mut().expect("checked");
                let batch = bb
                    .request_thread_run(&mut self.hv, &mut self.nvme, q, now, 32)
                    .expect("request thread");
                self.driver_cpus.run_on(q, now, batch.cost);
                for f in batch.failures {
                    self.queue.schedule_at(
                        f.respond_at,
                        Event::BlkError {
                            req_id: f.req_id,
                            ring: q,
                            epoch: self.bb_epoch,
                        },
                    );
                }
                for (ring, fire_at) in batch.cq_irqs {
                    self.queue.schedule_at(
                        fire_at,
                        Event::NvmeCq {
                            ring,
                            epoch: self.bb_epoch,
                        },
                    );
                }
                if !batch.more {
                    break;
                }
            }
        }
    }

    /// Charges a completion callback's cost to `vcpu` and sends the
    /// frontend notification for every ring the callback flagged.
    fn finish_blk_completion(&mut self, now: Nanos, vcpu: usize, res: kite_core::BlkComplete) {
        let mut done = self.driver_cpus.run_on(vcpu, now, res.cost);
        let mut mask = res.notify_rings;
        while mask != 0 {
            let q = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            let evtchn = self.blkback.device().expect("connected").port_of(q);
            let (n, c) = self.hv.evtchn_send(self.driver, evtchn).expect("channel");
            done = self.driver_cpus.run_on(vcpu, done, c);
            self.sched_irq(done, n);
        }
    }

    /// The driver domain dies mid-flight: Xen reclaims its resources and
    /// the domain's heartbeat stops with it. Under the oracle, detection
    /// is immediate; under the watchdog, the frontend keeps submitting to
    /// the dead backend until Dom0's monitor notices the silence.
    fn kill_driver(&mut self, now: Nanos) {
        if !self.blkback.is_connected() || self.recovering {
            return; // already down
        }
        self.hung = false; // a dead domain no longer livelocks
        self.recovery.record_crash(now);
        let dead = self.driver.0;
        self.hv
            .trace
            .emit_with(dead, || EventKind::Milestone { what: "kill" });
        self.bb_epoch += 1;
        if let Some(bb) = self.blkback.abandon(&mut self.hv) {
            self.bb_stats_base.merge(&bb.stats());
        }
        self.hv
            .destroy_domain(self.driver)
            .expect("driver was alive");
        if self.mode == DetectionMode::Oracle {
            self.detect_failure(now);
        }
    }

    /// The driver domain livelocks: the domain stays alive — and keeps
    /// publishing heartbeats — but blkback stops consuming requests and
    /// device completions never get serviced. Only the watchdog's
    /// ring-progress detector can catch this; the oracle variant detects
    /// it immediately, for ablation.
    fn hang_driver(&mut self, now: Nanos) {
        if !self.blkback.is_connected() || self.hung || self.recovering {
            return;
        }
        self.hung = true;
        self.recovery.record_hang(now);
        let dom = self.driver.0;
        self.hv
            .trace
            .emit_with(dom, || EventKind::Milestone { what: "hang" });
        if self.mode == DetectionMode::Oracle {
            self.detect_failure(now);
        }
    }

    /// Dom0's toolstack learns the backend failed: it destroys the domain
    /// if it still runs (livelock), walks the xenbus states, retires the
    /// dead device in the frontend and parks every unacknowledged chunk
    /// for replay. Reads are side-effect free and writes re-execute the
    /// same sectors, so the at-least-once replay loses no acknowledged
    /// request.
    fn detect_failure(&mut self, now: Nanos) {
        if self.recovering {
            return; // recovery already underway
        }
        self.recovering = true;
        if let Some(bb) = self.blkback.abandon(&mut self.hv) {
            // Livelocked backend torn down at detection time: retire its
            // incarnation so stale completions can't touch the successor.
            self.bb_epoch += 1;
            self.bb_stats_base.merge(&bb.stats());
        }
        if self.hv.domains.alive(self.driver) {
            let _ = self.hv.destroy_domain(self.driver);
        }
        self.hung = false;
        self.queue_wedged = false;
        // Function-level reset before the NVMe is re-assigned to the
        // replacement domain: the dead incarnation's queue pairs, cursors
        // and unreaped CQ entries vanish; media contents survive. The
        // new blkback recreates its queues lazily on first drain.
        self.nvme.reset();
        let d0 = DomainId::DOM0;
        let bs = self.paths.backend_state();
        let _ = self.hv.switch_state(d0, &bs, XenbusState::Closing);
        let _ = self.hv.switch_state(d0, &bs, XenbusState::Closed);
        self.recovery.record_detect(now);
        self.hv
            .trace
            .emit_with(d0.0, || EventKind::Milestone { what: "detect" });
        self.blkfront = None;
        let mut inflight: Vec<Chunk> = self.req_map.drain().map(|(_, c)| c).collect();
        inflight.sort_by_key(|c| (c.tag, c.order));
        self.recovery.retried_ops += inflight.len() as u64;
        for c in inflight.into_iter().rev() {
            self.pendq.push_front(c);
        }
        let fs = self.paths.frontend_state();
        let _ = self.hv.switch_state(self.guest, &fs, XenbusState::Closing);
        let _ = self.hv.switch_state(self.guest, &fs, XenbusState::Closed);
        let boot = self.boot.sample(&mut self.rng);
        self.queue.schedule_at(now + boot, Event::DriverRestarted);
    }

    /// The replacement driver domain booted: NVMe re-assigned, device
    /// pair re-provisioned, both ends reconnected, parked I/O replayed.
    fn driver_restarted(&mut self, now: Nanos) {
        let (name, mem) = match self.os {
            BackendOs::Kite => ("blkbackend", 1024),
            BackendOs::Linux => ("ubuntu-dd", 2048),
        };
        let nrings = self.queue_mode.queues();
        let driver = self.hv.create_domain(name, DomainKind::Driver, mem, nrings);
        self.driver = driver;
        self.hv
            .trace
            .emit_with(driver.0, || EventKind::Milestone { what: "reboot" });
        self.driver_cpus = CpuPool::new(nrings as usize);
        self.hv
            .pci
            .assign(self.nvme_bdf, driver)
            .expect("nvme back in pool");
        self.blockapp = BlockApp::start(&mut self.hv, driver, self.nvme.sectors).expect("blockapp");
        self.mgr = BackendManager::new(driver, DeviceKind::Vbd);
        self.mgr.start(&mut self.hv).expect("watch");
        self.paths = DevicePaths::new(self.guest, driver, DeviceKind::Vbd, 0);
        provision_device(&mut self.hv, &self.paths).expect("re-provision");
        if nrings > 1 {
            let be = self.paths.backend();
            self.hv
                .store
                .write(
                    DomainId::DOM0,
                    None,
                    &format!("{be}/{MQ_MAX_QUEUES_KEY}"),
                    &nrings.to_string(),
                )
                .expect("re-advertise rings");
        }
        self.mgr.drain_events(&mut self.hv).expect("scan");
        let mut bf =
            Blkfront::connect_with_queues(&mut self.hv, &self.paths, nrings).expect("blkfront");
        let ready = self.mgr.drain_events(&mut self.hv).expect("events");
        assert_eq!(ready.len(), 1, "frontend rediscovered after restart");
        self.blkback
            .retarget(&mut self.hv, ready[0].clone())
            .expect("slot empty");
        self.blkback.connect(&mut self.hv).expect("reconnect");
        if let Some(bb) = self.blkback.device_mut() {
            bb.set_copy_mode(self.copy_mode);
        }
        bf.read_features(&mut self.hv, &self.paths)
            .expect("features");
        self.max_req_bytes = bf.max_request_bytes();
        self.blkfront = Some(bf);
        self.hv
            .switch_state(
                self.guest,
                &self.paths.frontend_state(),
                XenbusState::Connected,
            )
            .expect("frontend reconnect");
        self.recovery.reconnects += 1;
        self.hv
            .trace
            .emit_with(driver.0, || EventKind::Milestone { what: "reconnect" });
        if let Some(t0) = self.recovery.last_crash_at {
            self.recovery.downtime += now - t0;
        }
        self.recovering = false;
        if self.mode == DetectionMode::Watchdog {
            // The replacement domain's heartbeat task beats as soon as it
            // boots, and the monitor re-aims at the new domain id.
            let mut hb = HeartbeatPublisher::new(driver);
            let _ = hb.beat(&mut self.hv);
            self.heartbeat = Some(hb);
            if let Some(mon) = self.monitor.as_mut() {
                mon.retarget(&mut self.hv, driver, now);
            }
        }
        self.drain_pendq(now);
    }

    fn handle(&mut self, now: Nanos, ev: Event) {
        let _prof = kite_prof::span(phase_of(&ev));
        self.hv.trace.set_now(now);
        self.hv.req.set_now(now);
        match ev {
            Event::Submit(op) => {
                let ok = self.try_submit(now, op, now);
                let _ = ok;
            }
            Event::Irq { dom, port } => {
                let _ = self.hv.evtchn.clear_pending(dom, port);
                if dom == self.driver {
                    if !self.blkback.is_connected() || self.hung {
                        return; // stale interrupt, or a livelocked handler
                    }
                    // The handler runs on the vCPU the owning ring is
                    // pinned to.
                    let bb = self.blkback.device().expect("checked");
                    let q = (0..bb.ring_count())
                        .find(|&q| bb.port_of(q) == port)
                        .unwrap_or(0);
                    let cost = bb.irq_handler_cost();
                    let idle = now.saturating_sub(self.driver_cpus.free_at(q));
                    let wake = self.os.profile().idle_wake(idle);
                    let t = self.driver_cpus.run_on(q, now, wake + cost);
                    self.run_blkback(t);
                } else if dom == self.guest {
                    if self.blkfront.is_none() {
                        return; // stale interrupt for a retired device
                    }
                    let earliest = self.guest_last_end;
                    // Guest wake-from-halt before completions are seen
                    // (same model as the network guest; worker latency).
                    let wake =
                        Nanos(now.saturating_sub(earliest).as_nanos() / 10).min(Nanos(170_000));
                    let now = now + wake;
                    let op = self
                        .blkfront
                        .as_mut()
                        .expect("checked")
                        .on_irq(&mut self.hv)
                        .expect("blkfront irq");
                    self.guest_cpu_run(now, wake + op.cost);
                    let completions = self.blkfront.as_mut().expect("checked").take_completions();
                    let mut finished: Vec<IoDone> = Vec::new();
                    for c in completions {
                        let Some(chunk) = self.req_map.remove(&c.id) else {
                            continue;
                        };
                        let (tag, order) = (chunk.tag, chunk.order);
                        let Some(ts) = self.tags.get_mut(&tag) else {
                            continue;
                        };
                        if let Some(r) = ts.req {
                            // Guest sees the completion after wake-from-halt.
                            let dom = self.guest.0;
                            self.hv
                                .req
                                .stamp_at(r, ReqStage::IrqDeliver, dom, None, now);
                        }
                        ts.ok &= c.ok;
                        if let Some(d) = c.data {
                            if ts.want_data {
                                ts.chunks.push((order, d));
                            }
                        }
                        ts.remaining -= 1;
                        if ts.remaining == 0 {
                            let mut ts = self.tags.remove(&tag).expect("present");
                            ts.chunks.sort_by_key(|&(o, _)| o);
                            let data = if ts.want_data && ts.ok {
                                let mut buf = Vec::new();
                                for (_, d) in ts.chunks {
                                    buf.extend_from_slice(&d);
                                }
                                Some(buf)
                            } else {
                                None
                            };
                            if let Some(r) = ts.req {
                                self.hv.req.finish_at(r, self.guest.0, now);
                            }
                            let lat = now - ts.submitted;
                            self.metrics.ios += 1;
                            self.metrics.latency.push_nanos(lat);
                            self.latency_hist.record(lat);
                            if self.recovery.record_first_byte(now) {
                                let guest = self.guest.0;
                                self.hv.trace.emit_with(guest, || EventKind::Milestone {
                                    what: "first_byte",
                                });
                            }
                            if let Some(d) = &data {
                                self.metrics.read_bytes += d.len() as u64;
                            }
                            finished.push(IoDone {
                                tag,
                                ok: ts.ok,
                                data,
                                submitted: ts.submitted,
                            });
                        }
                    }
                    // Ring slots freed: drain parked ops first.
                    self.drain_pendq(now);
                    if let Some(mut h) = self.handler.take() {
                        for d in &finished {
                            let next = h(now, d);
                            for op in next {
                                if !self.try_submit(now, op, now) {
                                    // Parked; drained on future completions.
                                }
                            }
                        }
                        self.handler = Some(h);
                    }
                }
            }
            Event::BlkError {
                req_id,
                ring,
                epoch,
            } => {
                if epoch != self.bb_epoch || self.hung {
                    // Response of a crashed backend incarnation, or a
                    // livelocked completion callback that never runs.
                    return;
                }
                let Some(bb) = self.blkback.device_mut() else {
                    return; // the request died with the driver domain
                };
                let res = bb.complete(&mut self.hv, req_id).expect("complete");
                self.finish_blk_completion(now, ring, res);
            }
            Event::NvmeCq { ring, epoch } => {
                if epoch != self.bb_epoch || self.hung {
                    // A CQ entry of a crashed/reset controller incarnation,
                    // or a livelocked interrupt handler that never runs.
                    return;
                }
                let Some(bb) = self.blkback.device_mut() else {
                    return; // the submission died with the driver domain
                };
                // MSI-X steering: the completion interrupt lands on the
                // vCPU the ring's queue-pair vector was created with (the
                // ring's own vCPU, unless rings share a pair).
                let vcpu = bb
                    .qid_of(ring)
                    .and_then(|qid| self.nvme.vector_of(qid))
                    .map_or(ring, |v| v.vcpu);
                let res = bb
                    .reap_completions(&mut self.hv, &mut self.nvme, ring, now)
                    .expect("reap");
                if res.completed == 0 {
                    return; // an earlier interrupt already reaped the entry
                }
                self.finish_blk_completion(now, vcpu, res);
            }
            Event::DriverCrash => {
                self.pending_faults = self.pending_faults.saturating_sub(1);
                self.kill_driver(now);
            }
            Event::DriverHang => {
                self.pending_faults = self.pending_faults.saturating_sub(1);
                self.hang_driver(now);
            }
            Event::QueueWedge(q) => {
                self.pending_faults = self.pending_faults.saturating_sub(1);
                if let Some(bb) = self.blkback.device_mut() {
                    if q < bb.ring_count() {
                        bb.set_queue_wedged(q, true);
                        self.queue_wedged = true;
                        self.hv
                            .trace
                            .emit_with(self.driver.0, || EventKind::Milestone { what: "wedge" });
                    }
                }
            }
            Event::DriverRestarted => self.driver_restarted(now),
            Event::BeatTick => {
                // The heartbeat task runs inside the driver domain, so it
                // survives a livelock — but dies with the domain.
                if let Some(hb) = self.heartbeat.as_mut() {
                    let _ = hb.beat(&mut self.hv);
                }
                if self.watch_live() {
                    if let Some(mon) = self.monitor.as_ref() {
                        self.queue
                            .schedule_at(now + mon.config().heartbeat_interval, Event::BeatTick);
                    }
                }
            }
            Event::ProbeTick => {
                let Some(mut mon) = self.monitor.take() else {
                    return;
                };
                let samples: Vec<ProgressSample> = self
                    .blkback
                    .device()
                    .map(|bb| {
                        bb.queue_progress(&self.hv)
                            .into_iter()
                            .map(|(consumed, pending)| ProgressSample { consumed, pending })
                            .collect()
                    })
                    .unwrap_or_default();
                let slo_report = slo::evaluate(&self.latency_hist, &self.slo_cfg);
                let slo_ok = !slo_report.breached;
                if slo_report.breached {
                    // Name the stage dominating the tail while it breaches
                    // (needs request tracing; None otherwise).
                    self.last_breach = slo::attribute(&self.hv.req);
                }
                let verdict = mon.probe_queues(&mut self.hv, now, &samples, slo_ok);
                let interval = mon.config().probe_interval;
                self.monitor = Some(mon);
                if verdict.is_failed() {
                    self.detect_failure(now);
                }
                if self.watch_live() {
                    self.queue.schedule_at(now + interval, Event::ProbeTick);
                }
            }
            Event::SampleTick => {
                self.sample_now(now);
                // Re-arm only while the workload is still producing
                // events, so quiescence is reachable.
                if let Some(every) = self.sampler.as_ref().map(|s| s.interval()) {
                    if !self.queue.is_empty() {
                        self.queue.schedule_at(now + every, Event::SampleTick);
                    }
                }
            }
        }
    }

    /// Whether the watchdog's ticks should keep rescheduling themselves.
    ///
    /// A real watchdog polls forever; here the ticks stay armed only
    /// while a fault can still need detecting (one is scheduled, the
    /// backend is hung/down, or recovery is in flight) so that
    /// [`StorSystem::run_to_quiescence`] terminates once the system
    /// settles into a healthy steady state.
    fn watch_live(&self) -> bool {
        self.mode == DetectionMode::Watchdog
            && (self.pending_faults > 0
                || self.hung
                || self.queue_wedged
                || self.recovering
                || !self.blkback.is_connected())
    }

    /// Freezes a `kitetop` view of every domain (dead incarnations
    /// included) at the current virtual time.
    pub fn top_snapshot(&self) -> TopSnapshot {
        let at = self.queue.now();
        let secs = at.as_secs_f64();
        let stats = self.blkback_stats();
        let mut rows: Vec<TopRow> = self
            .hv
            .domains
            .iter_all()
            .map(|d| {
                let is_driver = d.id == self.driver;
                let (health, beat_age) = match &self.monitor {
                    Some(m) if m.target() == d.id => {
                        let h = match m.state() {
                            HealthState::Suspect { missed } => format!("suspect({missed})"),
                            s => s.name().to_string(),
                        };
                        (h, Some(m.heartbeat_age(at)))
                    }
                    _ => ("-".to_string(), None),
                };
                let (ring_consumed, ring_pending) = match self.blkback.device() {
                    Some(bb) if is_driver => bb.progress(&self.hv),
                    _ => (0, 0),
                };
                let (req_per_sec, mbytes_per_sec) = if is_driver && secs > 0.0 {
                    (
                        stats.requests as f64 / secs,
                        (stats.read_bytes + stats.write_bytes) as f64 / 1e6 / secs,
                    )
                } else {
                    (0.0, 0.0)
                };
                TopRow {
                    dom: d.id.0,
                    name: d.name.clone(),
                    kind: match d.kind {
                        DomainKind::Dom0 => "dom0",
                        DomainKind::Driver => "driver",
                        DomainKind::Guest => "guest",
                    },
                    alive: d.state != DomainState::Dead,
                    health,
                    beat_age,
                    ring_pending,
                    ring_consumed,
                    grants: self.hv.grants.live_grants(d.id),
                    maps: self.hv.grants.active_maps(d.id),
                    evtchns: self.hv.evtchn.open_ports(d.id),
                    req_per_sec,
                    mbytes_per_sec,
                    rx_dropped: 0,
                    gso_frames: 0,
                    rx_qdepth: match self.blkback.device() {
                        Some(bb) if is_driver => bb
                            .queue_progress(&self.hv)
                            .into_iter()
                            .map(|(_, pending)| pending)
                            .collect(),
                        _ => Vec::new(),
                    },
                    p99_us: self
                        .hv
                        .req
                        .dom_hist(d.id.0)
                        .filter(|h| h.count() > 0)
                        .map(|h| h.quantile(0.99).as_nanos() as f64 / 1000.0),
                }
            })
            .collect();
        rows.sort_by_key(|r| r.dom);
        TopSnapshot { at, rows }
    }
}
