//! Calibration probe: prints the Figure 7-style latencies for both OSes.

use kite_sim::Nanos;
use kite_system::{addrs, BackendOs, NetSystem, Reply, Side};

fn main() {
    for os in BackendOs::both() {
        // Ping: 30 echoes at 1 s intervals.
        let mut sys = NetSystem::new(os, 1);
        for i in 0..30 {
            sys.ping_at(Nanos::from_secs(1) * (i as u64 + 1), i);
        }
        sys.run_to_quiescence();
        let ping_ms = sys.metrics.ping_rtts.mean() / 1e6;

        // Netperf-style RR: 1000 req/s, 1-byte payloads, 2 s.
        let mut sys = NetSystem::new(os, 2);
        sys.set_guest_app(Box::new(|_, msg| {
            vec![Reply {
                dst_ip: msg.src_ip,
                dst_port: msg.src_port,
                src_port: msg.dst_port,
                payload: vec![1],
                cost: Nanos::from_micros(2),
            }]
        }));
        use std::cell::RefCell;
        use std::rc::Rc;
        let rtts = Rc::new(RefCell::new(kite_sim::OnlineStats::new()));
        let sent = Rc::new(RefCell::new(std::collections::HashMap::new()));
        let r2 = rtts.clone();
        let s2 = sent.clone();
        sys.set_client_app(Box::new(move |now, msg| {
            let seq: u64 = u64::from(msg.dst_port);
            if let Some(t0) = s2.borrow_mut().remove(&seq) {
                r2.borrow_mut().push_nanos(now - t0);
            }
            Vec::new()
        }));
        for i in 0..2000u64 {
            let t = Nanos::from_millis(i);
            sent.borrow_mut().insert(10000 + i, t);
            sys.send_udp_at(
                t,
                Side::Client,
                addrs::GUEST,
                12865,
                (10000 + i) as u16,
                vec![0],
            );
        }
        sys.run_to_quiescence();
        let np_ms = rtts.borrow().mean() / 1e6;
        println!(
            "{:6}  ping={:.3}ms (paper {})  netperf={:.3}ms (paper {})",
            os.name(),
            ping_ms,
            if os == BackendOs::Kite {
                "0.31"
            } else {
                "0.51"
            },
            np_ms,
            if os == BackendOs::Kite {
                "0.10"
            } else {
                "0.18"
            },
        );
    }
}
