//! Allocation-free drain guarantees, measured with a counting global
//! allocator (one test so no other test thread pollutes the counter):
//!
//! 1. A warmed-up scheduler churn loop — pop, re-arm, cancel — performs
//!    **zero** allocations on both backends: event slots recycle
//!    through the slab, the wheel reuses bucket storage, the heap stays
//!    within its high-water capacity.
//! 2. A full 4-queue netback drain allocates identically across
//!    identical traffic windows: per-frame payload allocations are
//!    allowed (the data leaves the system), but nothing accumulates
//!    per drain — no bookkeeping growth, no leak-shaped drift.
//! 3. Disabled profiler spans are strictly zero-alloc: `kite_prof`
//!    instrumentation sits on the scheduler and backend hot paths, so
//!    its off-by-default cost contract (one branch, no clock, no
//!    allocation) is part of the same guarantee.
//! 4. A disabled request tracer is strictly zero-alloc across its whole
//!    API: admit/stamp/map/lookup/take/finish ride the ring-submit,
//!    drain and completion paths, so request tracing off must cost one
//!    branch per call and nothing else.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use kite_sim::{EventSched, Nanos, Scheduler, SchedulerKind};
use kite_system::{addrs, BackendOs, Side, SystemConfig};
use kite_xen::{ReqId, ReqStage, ReqTracer, SlotClass};

struct Counting;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: Counting = Counting;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// Deterministic steady-state churn: every iteration pops one timer and
/// re-arms it; every third iteration also cancels a victim and re-arms
/// it. Live count stays constant, stale entries are bounded by the
/// delay horizon, so a warmed-up scheduler has everything it needs.
fn churn(sched: &mut EventSched<u32>, pending: &mut [Option<kite_sim::EventId>], iters: u32) {
    // Two deterministic delay classes: short (level-0 buckets) and long
    // (an outer wheel level), so the cascade path is exercised too.
    let delay = |i: u32| {
        if i.is_multiple_of(7) {
            // ~2 ms sits in wheel level 1; its 64 slots rotate every
            // ~4.2 ms of virtual time, so the warmup (≈11 ms) touches
            // every slot the steady-state pattern can reach.
            Nanos::from_micros(2_000)
        } else {
            Nanos::from_micros(50 + (i % 13) as u64)
        }
    };
    for i in 0..iters {
        let (now, flow) = sched.pop().expect("fleet never drains dry");
        pending[flow as usize] = None;
        pending[flow as usize] = Some(sched.schedule_at(now + delay(i), flow));
        if i % 3 == 0 {
            let victim = i.wrapping_mul(2_654_435_761) % pending.len() as u32;
            if let Some(vid) = pending[victim as usize].take() {
                sched.cancel(vid);
            }
            pending[victim as usize] = Some(sched.schedule_at(now + delay(i + 1), victim));
        }
    }
}

#[test]
fn drain_paths_do_not_allocate_in_steady_state() {
    // Phase 1: strict zero-alloc scheduler churn, both backends.
    for kind in [SchedulerKind::Heap, SchedulerKind::Wheel] {
        let mut sched: EventSched<u32> = EventSched::new(kind);
        const FLEET: u32 = 1024;
        let mut pending: Vec<Option<kite_sim::EventId>> = vec![None; FLEET as usize];
        for f in 0..FLEET {
            let at = sched.now() + Nanos::from_micros(1 + f as u64);
            pending[f as usize] = Some(sched.schedule_at(at, f));
        }
        // Warmup: long enough that every bucket slot the steady-state
        // pattern touches has been filled once and every capacity has
        // hit its high-water mark.
        churn(&mut sched, &mut pending, 1_000_000);
        let before = allocs();
        churn(&mut sched, &mut pending, 50_000);
        assert_eq!(
            allocs() - before,
            0,
            "scheduler churn allocated on {kind:?} backend"
        );
    }

    // Phase 2: full 4-queue netback drain — identical windows allocate
    // identically (frame payloads per window are fine; drift is not).
    let mut sys = SystemConfig::new(BackendOs::Kite, 42).queues(4).build_net();
    let window = |sys: &mut kite_system::NetSystem| {
        let start = sys.now();
        for i in 0..256u64 {
            sys.send_udp_at(
                start + Nanos::from_micros(10 + 20 * (i / 64)),
                Side::Guest,
                addrs::CLIENT,
                9999,
                1200 + (i % 64) as u16,
                vec![i as u8; 1400],
            );
        }
        let before = allocs();
        sys.run_to_quiescence();
        allocs() - before
    };
    let w: Vec<u64> = (0..8).map(|_| window(&mut sys)).collect();
    // Windows can't be byte-equal: the system's cost-jitter Pcg state
    // carries across windows, so wheel-bucket phase wobbles a handful
    // of allocations either way. What must hold is flatness — any
    // per-window bookkeeping leak would grow the later windows.
    let (lo, hi) = (
        *w[2..].iter().min().expect("nonempty"),
        *w[2..].iter().max().expect("nonempty"),
    );
    assert!(
        hi - lo <= lo / 100,
        "4-queue netback drain allocations drift between identical windows: {w:?}"
    );

    // Phase 2b: the same flatness contract holds on the GSO super-frame
    // path — descriptor-chain walks, extra-info parsing and multi-slot
    // Rx chains all run out of recycled scratch, so a 4-queue offload
    // drain must not accumulate bookkeeping either.
    let mut sys = SystemConfig::new(BackendOs::Kite, 43)
        .queues(4)
        .gso(true)
        .build_net();
    assert!(sys.gso_negotiated());
    let window = |sys: &mut kite_system::NetSystem| {
        let start = sys.now();
        for i in 0..64u64 {
            // ~30KB messages: every send crosses the ring as a chained
            // super-frame (extra-info slot + multiple frags).
            sys.send_udp_at(
                start + Nanos::from_micros(10 + 20 * (i / 16)),
                Side::Guest,
                addrs::CLIENT,
                9999,
                1200 + (i % 64) as u16,
                vec![i as u8; 30_000],
            );
        }
        let before = allocs();
        sys.run_to_quiescence();
        allocs() - before
    };
    let w: Vec<u64> = (0..8).map(|_| window(&mut sys)).collect();
    assert!(sys.netback_stats().gso_tx_frames > 0, "chains exercised");
    let (lo, hi) = (
        *w[2..].iter().min().expect("nonempty"),
        *w[2..].iter().max().expect("nonempty"),
    );
    assert!(
        hi - lo <= lo / 100,
        "GSO super-frame drain allocations drift between identical windows: {w:?}"
    );

    // Phase 3: disabled profiler spans allocate nothing, for every
    // phase in the registry.
    kite_prof::disable();
    let before = allocs();
    for _ in 0..10_000 {
        for p in kite_prof::Phase::ALL {
            let _g = kite_prof::span(p);
        }
    }
    assert_eq!(
        allocs() - before,
        0,
        "disabled kite_prof::span must not allocate"
    );

    // Phase 4: the whole request-tracing API is zero-alloc while
    // disabled — every call the datapaths make when `req_tracing` is
    // off must be a single branch.
    let mut rt = ReqTracer::disabled();
    let before = allocs();
    for i in 0..10_000u64 {
        rt.set_now(Nanos(i));
        assert!(rt.admit(0).is_none());
        rt.stamp(ReqId(i), ReqStage::RingSubmit, 1, None);
        rt.stamp_at(ReqId(i), ReqStage::GrantCopy, 1, Some(0), Nanos(i));
        rt.map(SlotClass::NetTx, i, ReqId(i));
        assert!(rt.lookup(SlotClass::NetTx, i).is_none());
        assert!(rt.take(SlotClass::BlkReq, i).is_none());
        rt.finish(ReqId(i), 0);
        assert_eq!(rt.completed_len(), 0);
    }
    assert_eq!(
        allocs() - before,
        0,
        "disabled ReqTracer calls must not allocate"
    );
}
