//! End-to-end integration tests: real bytes through every hop.

use std::cell::RefCell;
use std::rc::Rc;

use kite_sim::Nanos;
use kite_system::{addrs, BackendOs, IoKind, IoOp, NetSystem, Reply, Side, StorSystem};

#[test]
fn udp_request_reply_roundtrip_with_payload_integrity() {
    for os in BackendOs::both() {
        let mut sys = NetSystem::new(os, 42);
        // Guest echo server on port 7.
        sys.set_guest_app(Box::new(|_, msg| {
            vec![Reply {
                dst_ip: msg.src_ip,
                dst_port: msg.src_port,
                src_port: msg.dst_port,
                payload: msg.payload.clone(),
                cost: Nanos::from_micros(1),
            }]
        }));
        let got: Rc<RefCell<Vec<Vec<u8>>>> = Rc::new(RefCell::new(Vec::new()));
        let got2 = got.clone();
        sys.set_client_app(Box::new(move |_, msg| {
            got2.borrow_mut().push(msg.payload.clone());
            Vec::new()
        }));
        let payload: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        sys.send_udp_at(
            Nanos::from_millis(1),
            Side::Client,
            addrs::GUEST,
            7,
            40000,
            payload.clone(),
        );
        sys.run_to_quiescence();
        let got = got.borrow();
        assert_eq!(got.len(), 1, "{}: echo reply arrived", os.name());
        assert_eq!(got[0], payload, "{}: payload intact end to end", os.name());
        let st = sys.netback_stats();
        assert!(st.rx_packets >= 1, "request crossed netback Rx");
        assert!(st.tx_packets >= 1, "reply crossed netback Tx");
        assert_eq!(sys.metrics.drops, 0);
    }
}

#[test]
fn large_message_chunks_and_reassembles() {
    let mut sys = NetSystem::new(BackendOs::Kite, 7);
    let bytes_seen = Rc::new(RefCell::new(0usize));
    let bs = bytes_seen.clone();
    sys.set_guest_app(Box::new(move |_, msg| {
        *bs.borrow_mut() += msg.payload.len();
        Vec::new()
    }));
    // 64 KiB message -> 17 GSO-sized chunks.
    sys.send_udp_at(
        Nanos::from_millis(1),
        Side::Client,
        addrs::GUEST,
        5001,
        40000,
        vec![0xab; 65536],
    );
    sys.run_to_quiescence();
    assert_eq!(*bytes_seen.borrow(), 65536);
    assert!(sys.metrics.guest_rx_msgs >= 17);
}

#[test]
fn ping_rtt_sub_millisecond_and_kite_faster() {
    let mut rtts = Vec::new();
    for os in BackendOs::both() {
        let mut sys = NetSystem::new(os, 11);
        for i in 0..20 {
            sys.ping_at(Nanos::from_millis(10 * i as u64), i);
        }
        sys.run_to_quiescence();
        assert_eq!(
            sys.metrics.ping_rtts.count(),
            20,
            "{}: all pings replied",
            os.name()
        );
        let mean = sys.metrics.ping_rtts.mean();
        rtts.push(mean);
        assert!(
            mean < 1_000_000.0,
            "{}: RTT {}ns below 1ms",
            os.name(),
            mean
        );
        assert!(
            mean > 10_000.0,
            "{}: RTT {}ns is physically plausible",
            os.name(),
            mean
        );
    }
    // Paper Fig 7: Kite ping latency < Linux.
    assert!(rtts[1] < rtts[0], "Kite {} < Linux {}", rtts[1], rtts[0]);
}

#[test]
fn guest_to_client_direction_works() {
    let mut sys = NetSystem::new(BackendOs::Kite, 3);
    let got = Rc::new(RefCell::new(0u64));
    let g = got.clone();
    sys.set_client_app(Box::new(move |_, msg| {
        *g.borrow_mut() += msg.payload.len() as u64;
        Vec::new()
    }));
    for i in 0..50 {
        sys.send_udp_at(
            Nanos::from_micros(100 * i),
            Side::Guest,
            addrs::CLIENT,
            9999,
            1234,
            vec![1u8; 1400],
        );
    }
    sys.run_to_quiescence();
    assert_eq!(*got.borrow(), 50 * 1400);
    assert_eq!(sys.netback_stats().tx_packets, 50);
}

#[test]
fn storage_write_then_read_verifies_bytes() {
    for os in BackendOs::both() {
        let mut sys = StorSystem::new(os, 42);
        let data: Vec<u8> = (0..256 * 1024).map(|i| (i % 241) as u8).collect();
        sys.submit_at(
            Nanos::from_millis(1),
            IoOp {
                tag: 1,
                kind: IoKind::Write {
                    sector: 2048,
                    data: data.clone(),
                },
            },
        );
        sys.run_to_quiescence();
        assert_eq!(sys.metrics.ios, 1, "{}: write completed", os.name());

        // Read it back through the whole PV path.
        let read_back: Rc<RefCell<Option<Vec<u8>>>> = Rc::new(RefCell::new(None));
        let rb = read_back.clone();
        sys.set_handler(Box::new(move |_, done| {
            if done.tag == 2 {
                *rb.borrow_mut() = done.data.clone();
            }
            Vec::new()
        }));
        sys.submit_at(
            sys.now() + Nanos::from_millis(1),
            IoOp {
                tag: 2,
                kind: IoKind::Read {
                    sector: 2048,
                    len: data.len(),
                },
            },
        );
        sys.run_to_quiescence();
        let rb = read_back.borrow();
        assert_eq!(
            rb.as_deref(),
            Some(data.as_slice()),
            "{}: bytes intact",
            os.name()
        );
    }
}

#[test]
fn storage_flush_and_closed_loop_worker() {
    let mut sys = StorSystem::new(BackendOs::Kite, 9);
    // A closed-loop worker: write 64 KiB, then flush, then stop. Tags:
    // 1 = write, 2 = flush.
    sys.set_handler(Box::new(move |_, done| {
        assert!(done.ok);
        if done.tag == 1 {
            vec![IoOp {
                tag: 2,
                kind: IoKind::Flush,
            }]
        } else {
            Vec::new()
        }
    }));
    sys.submit_at(
        Nanos::from_millis(1),
        IoOp {
            tag: 1,
            kind: IoKind::Write {
                sector: 0,
                data: vec![7u8; 65536],
            },
        },
    );
    sys.run_to_quiescence();
    assert_eq!(sys.metrics.ios, 2);
    assert_eq!(sys.outstanding(), 0);
}

#[test]
fn storage_uses_indirect_segments_for_large_io() {
    let mut sys = StorSystem::new(BackendOs::Kite, 5);
    // One 128 KiB request = 32 segments: must go indirect (> 11 segs).
    sys.submit_at(
        Nanos::from_millis(1),
        IoOp {
            tag: 1,
            kind: IoKind::Write {
                sector: 0,
                data: vec![3u8; 128 * 1024],
            },
        },
    );
    sys.run_to_quiescence();
    let st = sys.blkback_stats();
    assert_eq!(st.requests, 1, "a single (indirect) ring request sufficed");
    assert_eq!(sys.metrics.ios, 1);
}

#[test]
fn persistent_grants_reduce_maps_on_repeat_io() {
    let mut sys = StorSystem::new(BackendOs::Kite, 6);
    for i in 0..20 {
        sys.submit_at(
            Nanos::from_millis(1 + i),
            IoOp {
                tag: i,
                kind: IoKind::Write {
                    sector: 0,
                    data: vec![i as u8; 4096],
                },
            },
        );
    }
    sys.run_to_quiescence();
    let st = sys.blkback_stats();
    assert_eq!(st.requests, 20);
    assert!(
        st.persistent_hits > 0,
        "page pool reuse should hit the persistent-grant cache: {st:?}"
    );
    assert!(st.grant_maps < 20, "maps avoided: {st:?}");
}

#[test]
fn deterministic_replay_same_seed() {
    let run = |seed: u64| {
        let mut sys = NetSystem::new(BackendOs::Kite, seed);
        sys.set_guest_app(Box::new(|_, msg| {
            vec![Reply {
                dst_ip: msg.src_ip,
                dst_port: msg.src_port,
                src_port: msg.dst_port,
                payload: vec![0; 64],
                cost: Nanos::from_micros(2),
            }]
        }));
        for i in 0..200u64 {
            sys.send_udp_at(
                Nanos::from_micros(50 * i),
                Side::Client,
                addrs::GUEST,
                80,
                4000,
                vec![1; 200],
            );
        }
        sys.run_to_quiescence();
        (
            sys.now().as_nanos(),
            sys.metrics.client_rx_bytes,
            sys.events_processed(),
        )
    };
    assert_eq!(run(1234), run(1234), "same seed, same trajectory");
}

#[test]
fn nat_mode_carries_guest_initiated_flows() {
    let mut sys = NetSystem::new(BackendOs::Kite, 77);
    sys.use_nat();
    // Client echoes whatever arrives (it sees the gateway as the source).
    sys.set_client_app(Box::new(|_, msg| {
        vec![Reply {
            dst_ip: msg.src_ip,
            dst_port: msg.src_port,
            src_port: msg.dst_port,
            payload: msg.payload.clone(),
            cost: Nanos::from_micros(1),
        }]
    }));
    let got: Rc<RefCell<Vec<Vec<u8>>>> = Rc::new(RefCell::new(Vec::new()));
    let g2 = got.clone();
    let src_seen: Rc<RefCell<Option<std::net::Ipv4Addr>>> = Rc::new(RefCell::new(None));
    sys.set_guest_app(Box::new(move |_, msg| {
        g2.borrow_mut().push(msg.payload.clone());
        Vec::new()
    }));
    // Record what source the client sees by wrapping its handler… instead,
    // assert afterwards via the NAT flow table.
    drop(src_seen);
    sys.send_udp_at(
        Nanos::from_millis(1),
        Side::Guest,
        addrs::CLIENT,
        9999,
        5555,
        b"through the NAT".to_vec(),
    );
    sys.run_to_quiescence();
    let got = got.borrow();
    assert_eq!(got.len(), 1, "reply translated back to the guest");
    assert_eq!(got[0], b"through the NAT");
    assert_eq!(sys.netapp.nat.flows(), 1, "one SNAT flow established");
}

#[test]
fn nat_mode_drops_unsolicited_inbound_udp() {
    let mut sys = NetSystem::new(BackendOs::Kite, 78);
    sys.use_nat();
    let seen = Rc::new(RefCell::new(0u64));
    let s2 = seen.clone();
    sys.set_guest_app(Box::new(move |_, _| {
        *s2.borrow_mut() += 1;
        Vec::new()
    }));
    // The client scans the gateway directly: no flow, must be dropped.
    sys.send_udp_at(
        Nanos::from_millis(1),
        Side::Client,
        addrs::GATEWAY,
        31337,
        4444,
        vec![0; 64],
    );
    sys.run_to_quiescence();
    assert_eq!(*seen.borrow(), 0, "unsolicited UDP never reaches the guest");
    assert!(sys.metrics.drops >= 1);
    // But ping still works in NAT mode (gateway proxies ICMP).
    sys.ping_at(sys.now() + Nanos::from_millis(1), 1);
    sys.run_to_quiescence();
    assert_eq!(sys.metrics.ping_rtts.count(), 1);
}
