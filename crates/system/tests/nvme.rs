//! NVMe queue-pair API: equivalence, determinism, and cursor isolation.
//!
//! 1. The legacy `submit()` shim is a one-queue controller: an identical
//!    mixed command stream produces identical completion times and
//!    lifetime counters through either interface, across many seeds.
//! 2. A same-seed 4-ring storage run is byte-identical — trace document
//!    and metrics — across the heap and wheel scheduler backends.
//! 3. Per-queue sequential cursors are isolated: a strictly sequential
//!    stream on one queue never pays the random penalty because another
//!    queue writes elsewhere.
//! 4. When the controller caps out of queue pairs, rings share one and
//!    the system still completes and verifies every byte.

use std::cell::RefCell;
use std::rc::Rc;

use kite_devices::{NvmeCmd, NvmeController, NvmeOp, NvmeProfile};
use kite_sim::{Nanos, Pcg, SchedulerKind};
use kite_system::{BackendOs, IoKind, IoOp, StorSystem, SystemConfig};

/// The echo workload every storage test below reuses: four sequential
/// write streams in distinct regions, interleaved round-robin, then a
/// read-back of the first stream's head.
fn submit_streams(sys: &mut StorSystem, per_stream: u64) {
    const CHUNK: usize = 8 * 1024;
    let mut t = Nanos::from_micros(100);
    for i in 0..(4 * per_stream) {
        let stream = i % 4;
        let idx = i / 4;
        sys.submit_at(
            t,
            IoOp {
                tag: i,
                kind: IoKind::Write {
                    sector: stream * (1 << 20) + idx * (CHUNK / 512) as u64,
                    data: vec![(i % 251) as u8; CHUNK],
                },
            },
        );
        t += Nanos::from_micros(2);
    }
}

#[test]
#[allow(clippy::disallowed_methods)] // the shim is the test subject
fn legacy_shim_matches_one_queue_controller_across_seeds() {
    for seed in 0..16u64 {
        let mut rng = Pcg::seeded(seed);
        let mut shim = NvmeController::new(4);
        let mut qp = NvmeController::new(4);
        let q = qp.create_io_queues(0).expect("queue pair");
        let mut now = Nanos::from_micros(50);
        let mut cursor = 0u64;
        for _ in 0..64 {
            let cmd = match rng.index(4) {
                0 => NvmeCmd::read(rng.index(1 << 20) as u64, 4096),
                1 => NvmeCmd::write(rng.index(1 << 20) as u64, 8192),
                2 => {
                    // Sometimes continue sequentially from the cursor.
                    let c = NvmeCmd::write(cursor, 16384);
                    cursor += 32;
                    c
                }
                _ => NvmeCmd::flush(),
            };
            let a = shim.submit(now, cmd.op, cmd.sector, cmd.len_bytes);
            qp.sq_push(q, cmd);
            let b = qp.ring_doorbell(q, now)[0].completes_at;
            qp.cq_pop(q, b).expect("due entry");
            assert_eq!(a, b, "seed {seed}: shim and queue pair diverged");
            now += Nanos::from_micros(rng.index(20) as u64 + 1);
        }
        assert_eq!(shim.reads(), qp.reads());
        assert_eq!(shim.writes(), qp.writes());
        assert_eq!(shim.read_bytes(), qp.read_bytes());
        assert_eq!(shim.write_bytes(), qp.write_bytes());
        assert_eq!(shim.seq_hits(), qp.seq_hits());
        assert_eq!(shim.random_penalties(), qp.random_penalties());
    }
}

#[test]
fn four_ring_storage_run_is_byte_identical_across_backends() {
    let run = |kind: SchedulerKind| {
        let mut sys = SystemConfig::new(BackendOs::Kite, 42)
            .queues(4)
            .scheduler(kind)
            .tracing(1 << 17)
            .build_stor();
        submit_streams(&mut sys, 16);
        sys.run_to_quiescence();
        assert_eq!(sys.hv.trace.dropped(), 0, "trace ring overflowed");
        assert_eq!(sys.metrics.ios, 64, "{kind:?}: all writes completed");
        (
            sys.now().as_nanos(),
            sys.metrics.ios,
            sys.metrics.write_bytes,
            sys.nvme.seq_hits(),
            sys.nvme.random_penalties(),
            sys.hv.export_chrome_trace(),
        )
    };
    let heap = run(SchedulerKind::Heap);
    let wheel = run(SchedulerKind::Wheel);
    assert_eq!(heap.0, wheel.0, "virtual end time");
    assert_eq!(
        (heap.1, heap.2, heap.3, heap.4),
        (wheel.1, wheel.2, wheel.3, wheel.4),
        "metrics and device counters"
    );
    assert_eq!(heap.5, wheel.5, "trace documents differ between backends");
}

#[test]
fn sequential_cursor_is_immune_to_traffic_on_other_queues() {
    for seed in 0..16u64 {
        let mut rng = Pcg::seeded(seed ^ 0x5eed);
        let mut d = NvmeController::with_profile(4, NvmeProfile::default());
        let qa = d.create_io_queues(0).expect("queue A");
        let qb = d.create_io_queues(1).expect("queue B");
        let mut now = Nanos::from_micros(10);
        let mut sector = 0u64;
        for i in 0..48 {
            // Noise on queue B at a random far-away sector.
            d.sq_push(
                qb,
                NvmeCmd::write((1 << 22) + rng.index(1 << 20) as u64, 4096),
            );
            d.ring_doorbell(qb, now);
            let before = d.random_penalties();
            // Strictly sequential stream on queue A.
            d.sq_push(qa, NvmeCmd::write(sector, 8192));
            d.ring_doorbell(qa, now);
            sector += 16;
            let penalty_paid = d.random_penalties() - before;
            if i == 0 {
                assert_eq!(
                    penalty_paid, 1,
                    "seed {seed}: first command seeds the cursor"
                );
            } else {
                assert_eq!(
                    penalty_paid, 0,
                    "seed {seed}: sequential stream on queue A paid a random \
                     penalty because queue B wrote elsewhere (iteration {i})"
                );
            }
            while d.cq_pop(qa, Nanos::from_secs(10)).is_some() {}
            while d.cq_pop(qb, Nanos::from_secs(10)).is_some() {}
            now += Nanos::from_micros(5);
        }
    }
}

#[test]
fn rings_share_queue_pairs_when_the_controller_caps_out() {
    let mut sys = SystemConfig::new(BackendOs::Kite, 7)
        .queues(4)
        .nvme_max_io_queues(1)
        .build_stor();
    submit_streams(&mut sys, 8);
    sys.run_to_quiescence();
    assert_eq!(
        sys.metrics.ios, 32,
        "all writes completed through one queue"
    );
    assert_eq!(sys.nvme.io_queue_count(), 1, "controller enforced its cap");
    assert_eq!(sys.outstanding(), 0);

    // Read back one stream's head through the shared queue and check
    // the bytes survived the fan-in.
    let read_back: Rc<RefCell<Option<Vec<u8>>>> = Rc::new(RefCell::new(None));
    let rb = read_back.clone();
    sys.set_handler(Box::new(move |_, done| {
        if done.tag == 1000 {
            *rb.borrow_mut() = done.data.clone();
        }
        Vec::new()
    }));
    sys.submit_at(
        sys.now() + Nanos::from_millis(1),
        IoOp {
            tag: 1000,
            kind: IoKind::Read {
                sector: 1 << 20,
                len: 8 * 1024,
            },
        },
    );
    sys.run_to_quiescence();
    let rb = read_back.borrow();
    // Stream 1's first chunk was tag 1: fill byte 1 % 251.
    assert_eq!(rb.as_deref(), Some(vec![1u8; 8 * 1024].as_slice()));
}

#[test]
fn flush_goes_through_the_queue_pair_path() {
    let mut sys = SystemConfig::new(BackendOs::Kite, 3).queues(2).build_stor();
    sys.set_handler(Box::new(|_, done| {
        assert!(done.ok);
        if done.tag == 1 {
            vec![IoOp {
                tag: 2,
                kind: IoKind::Flush,
            }]
        } else {
            Vec::new()
        }
    }));
    sys.submit_at(
        Nanos::from_millis(1),
        IoOp {
            tag: 1,
            kind: IoKind::Write {
                sector: 64,
                data: vec![9u8; 32 * 1024],
            },
        },
    );
    sys.run_to_quiescence();
    assert_eq!(sys.metrics.ios, 2);
    assert_eq!(sys.outstanding(), 0);
}

#[test]
#[allow(clippy::disallowed_methods)] // exercises the banned shim on purpose
fn shim_usage_does_not_disturb_explicit_queues() {
    // The shim lazily creates its own queue pair; explicit queues made
    // before or after keep their IDs and cursors.
    let mut d = NvmeController::new(1);
    let q1 = d.create_io_queues(0).expect("first pair");
    let t = d.submit(Nanos::ZERO, NvmeOp::Write, 0, 4096);
    assert!(t > Nanos::ZERO);
    let q3 = d.create_io_queues(1).expect("third pair");
    assert_ne!(q1, q3);
    assert_eq!(d.io_queue_count(), 3, "two explicit pairs plus the shim's");
}
