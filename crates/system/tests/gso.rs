//! Segmentation-offload property tests over the full simulated stack.
//!
//! GSO is a *transport* optimization: descriptor chains change how bytes
//! cross the ring, never which bytes arrive. These tests pin that down:
//!
//! * the same seeded workload run with offload off and on delivers
//!   byte-identical per-flow payload streams at both endpoints, across
//!   1–8 queues — while the on-run demonstrably used chains (TSO on
//!   transmit, LRO on receive) and the off-run used none;
//! * a GSO run is deterministic across scheduler backends: heap and
//!   timer wheel produce byte-identical flow-annotated Chrome exports
//!   and identical final clocks;
//! * offload negotiation survives driver-domain crash recovery — the
//!   replacement backend re-advertises, the frontend renegotiates, and
//!   super-frames flow again after the reboot.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use kite_sim::{Nanos, Pcg, SchedulerKind};
use kite_system::{addrs, BackendOs, NetSystem, Side, SystemConfig};
use kite_xen::FaultPlan;

/// Per-flow byte streams seen at one endpoint: `(src_port, dst_port)` →
/// concatenated payload bytes in arrival order. Chunking differs between
/// offload modes (1472-byte software segments vs 64KB super-frames), so
/// message *boundaries* differ; the reassembled stream must not.
type Streams = Rc<RefCell<BTreeMap<(u16, u16), Vec<u8>>>>;

fn recorder(streams: &Streams) -> kite_system::UdpHandler {
    let s = streams.clone();
    Box::new(move |_, msg| {
        s.borrow_mut()
            .entry((msg.src_port, msg.dst_port))
            .or_default()
            .extend_from_slice(&msg.payload);
        Vec::new()
    })
}

/// Drives the same seeded bidirectional workload (guest→client and
/// client→guest flows, Pcg-drawn sizes from sub-MTU to ~48KB) and
/// returns what each endpoint received, per flow.
fn seeded_run(gso: bool, queues: u32, kind: SchedulerKind) -> (NetSystem, Vec<u8>, Vec<u8>) {
    let mut sys = SystemConfig::new(BackendOs::Kite, 0xC0FFEE)
        .queues(queues)
        .gso(gso)
        .scheduler(kind)
        .build_net();
    let at_client: Streams = Rc::new(RefCell::new(BTreeMap::new()));
    let at_guest: Streams = Rc::new(RefCell::new(BTreeMap::new()));
    sys.set_client_app(recorder(&at_client));
    sys.set_guest_app(recorder(&at_guest));

    // The workload generator is seeded independently of the system so
    // both runs draw the identical message sequence.
    let mut rng = Pcg::seeded(7 * u64::from(queues) + 1);
    let mut t = Nanos::from_micros(100);
    for i in 0..60u64 {
        let flow = (rng.next_u64() % u64::from(queues.max(2))) as u16;
        let len = rng.range_u64(64, 48_000) as usize;
        let mut payload = vec![0u8; len];
        rng.fill_bytes(&mut payload);
        let (side, dst, dport) = if i % 3 == 0 {
            (Side::Client, addrs::GUEST, 7000 + flow)
        } else {
            (Side::Guest, addrs::CLIENT, 9000 + flow)
        };
        sys.send_udp_at(t, side, dst, dport, 40_000 + flow, payload);
        t += Nanos::from_micros(rng.range_u64(20, 400));
    }
    sys.run_to_quiescence();

    // Flatten the per-flow maps into one deterministic digest each:
    // BTreeMap ordering makes this independent of arrival interleaving
    // *across* flows while preserving order *within* each flow.
    let flatten = |s: &Streams| {
        let mut out = Vec::new();
        for ((sp, dp), bytes) in s.borrow().iter() {
            out.extend_from_slice(&sp.to_le_bytes());
            out.extend_from_slice(&dp.to_le_bytes());
            out.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
            out.extend_from_slice(bytes);
        }
        out
    };
    let (c, g) = (flatten(&at_client), flatten(&at_guest));
    (sys, c, g)
}

#[test]
fn offload_is_invisible_to_payload_streams_across_queue_counts() {
    for queues in [1u32, 2, 4, 8] {
        let (off_sys, off_client, off_guest) = seeded_run(false, queues, SchedulerKind::Wheel);
        let (on_sys, on_client, on_guest) = seeded_run(true, queues, SchedulerKind::Wheel);

        assert!(
            !off_sys.gso_negotiated(),
            "q={queues}: Off never negotiates"
        );
        assert!(on_sys.gso_negotiated(), "q={queues}: On negotiates");

        let off = off_sys.netback_stats();
        let on = on_sys.netback_stats();
        assert_eq!(off.gso_tx_frames, 0, "q={queues}: no chains without GSO");
        assert_eq!(off.lro_rx_frames, 0);
        assert!(
            on.gso_tx_frames > 0,
            "q={queues}: guest→client super-frames crossed the Tx ring"
        );
        assert!(
            on.lro_rx_frames > 0,
            "q={queues}: client→guest frames coalesced across Rx buffers"
        );
        assert_eq!(on.gso_errors(), 0, "q={queues}: clean run, no rejects");

        assert!(!off_client.is_empty() && !off_guest.is_empty());
        assert_eq!(
            off_client, on_client,
            "q={queues}: client-side per-flow streams must be byte-identical"
        );
        assert_eq!(
            off_guest, on_guest,
            "q={queues}: guest-side per-flow streams must be byte-identical"
        );
    }
}

#[test]
fn gso_runs_identically_on_heap_and_wheel_schedulers() {
    let run = |kind: SchedulerKind| {
        let mut sys = SystemConfig::new(BackendOs::Kite, 31)
            .queues(4)
            .gso(true)
            .scheduler(kind)
            .tracing(1 << 16)
            .req_tracing(2)
            .build_net();
        let mut rng = Pcg::seeded(99);
        let mut t = Nanos::from_micros(50);
        for _ in 0..48 {
            let len = rng.range_u64(1_000, 40_000) as usize;
            sys.send_udp_at(
                t,
                Side::Guest,
                addrs::CLIENT,
                9999,
                41_000 + (rng.next_u32() % 8) as u16,
                vec![0x6b; len],
            );
            t += Nanos::from_micros(rng.range_u64(30, 300));
        }
        sys.run_to_quiescence();
        (
            sys.now().as_nanos(),
            sys.events_processed(),
            sys.netback_stats().gso_tx_segs,
            sys.hv.export_chrome_trace(),
        )
    };
    let (h_now, h_ev, h_segs, h_trace) = run(SchedulerKind::Heap);
    let (w_now, w_ev, w_segs, w_trace) = run(SchedulerKind::Wheel);
    assert!(h_segs > 0, "the run exercised the super-frame path");
    assert_eq!((h_now, h_ev, h_segs), (w_now, w_ev, w_segs));
    assert_eq!(h_trace, w_trace, "flow-annotated exports byte-identical");
}

#[test]
fn offload_renegotiates_across_driver_crash_recovery() {
    let mut sys = SystemConfig::new(BackendOs::Kite, 5).gso(true).build_net();
    assert!(sys.gso_negotiated(), "negotiated at first connect");

    let last_arrival = Rc::new(RefCell::new(Nanos::ZERO));
    let la = last_arrival.clone();
    sys.set_client_app(Box::new(move |now, _| {
        *la.borrow_mut() = now;
        Vec::new()
    }));
    // 20 s of super-frame traffic spanning a kill at t=2s: the tail
    // must flow through the *replacement* backend.
    for i in 0..80u64 {
        sys.send_udp_at(
            Nanos::from_millis(1 + 250 * i),
            Side::Guest,
            addrs::CLIENT,
            9999,
            1234,
            vec![i as u8; 30_000],
        );
    }
    let crash_at = Nanos::from_secs(2);
    sys.inject_faults(FaultPlan::seeded(5).with_kill_at(crash_at));
    sys.run_to_quiescence();

    assert!(
        sys.gso_negotiated(),
        "replacement backend re-advertised and the frontend renegotiated"
    );
    assert!(
        *last_arrival.borrow() > crash_at,
        "traffic resumed after the crash (last arrival {:?})",
        *last_arrival.borrow()
    );
    let st = sys.netback_stats();
    assert!(
        st.gso_tx_frames > 0 && st.gso_errors() == 0,
        "super-frames kept flowing across incarnations: {st:?}"
    );
}
