//! End-to-end request tracing: determinism, stage-model and flow-export
//! guarantees over the full simulated stack.
//!
//! Request tracing sits on every datapath (netfront rings, netback
//! drains, blkback rings, NVMe queue pairs, IRQ delivery), so these
//! tests drive whole systems — the ping echo path and the 4-ring
//! storage path — and assert the tracer's contract from the outside:
//!
//! * per-request stage durations telescope to the end-to-end latency
//!   exactly (no gaps, no double counting), with stamps in path order;
//! * same-seed runs are byte-identical, including across scheduler
//!   backends (heap vs timer wheel) and in the flow-annotated Chrome
//!   exports;
//! * the flow arrows validate (one begin, one end, monotonic steps per
//!   request id).

use kite_sim::{Nanos, SchedulerKind};
use kite_system::{BackendOs, IoKind, IoOp, NetSystem, StorSystem, SystemConfig};
use kite_trace::{chrome, ReqTracer, Stage};

/// Renders the tracer state as a deterministic text digest: header
/// counters, per-stage histogram counts and p50/p99 (exact bucket
/// values), and every completed record's full stamp trail.
fn digest(req: &ReqTracer) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "seen={} sampled={} completed={} dropped={} live={}",
        req.seen(),
        req.sampled(),
        req.completed_len(),
        req.dropped(),
        req.live_len(),
    );
    for &stage in &Stage::ALL {
        let Some(h) = req.stage_hist(stage) else {
            continue;
        };
        if h.count() == 0 {
            continue;
        }
        let qs = h.quantiles(&[0.5, 0.99]);
        let _ = writeln!(
            out,
            "{} count={} p50={} p99={}",
            stage.name(),
            h.count(),
            qs[0].as_nanos(),
            qs[1].as_nanos(),
        );
    }
    for rec in req.completed() {
        let _ = write!(out, "req {}:", rec.id);
        for s in &rec.stamps {
            let _ = write!(
                out,
                " {}@{}/d{}q{}",
                s.stage.name(),
                s.at.as_nanos(),
                s.dom,
                s.qid.map_or(-1, i64::from),
            );
        }
        let _ = writeln!(out, " e2e={}", rec.e2e().as_nanos());
    }
    out
}

/// The echo scenario: 64 pings, every other one sampled.
fn echo_run(kind: SchedulerKind) -> NetSystem {
    let mut sys = SystemConfig::new(BackendOs::Kite, 11)
        .scheduler(kind)
        .tracing(1 << 16)
        .req_tracing(2)
        .build_net();
    for i in 0..64u16 {
        sys.ping_at(Nanos::from_millis(1 + 2 * u64::from(i)), i);
    }
    sys.run_to_quiescence();
    sys
}

/// The 4-ring storage scenario: four interleaved sequential write
/// streams, every third I/O sampled (3 is coprime to the 4-way ring
/// round-robin, so the samples visit every ring).
fn storage_run(kind: SchedulerKind) -> StorSystem {
    let mut sys = SystemConfig::new(BackendOs::Kite, 7)
        .queues(4)
        .scheduler(kind)
        .tracing(1 << 16)
        .req_tracing(3)
        .build_stor();
    const CHUNK: usize = 8 * 1024;
    let mut t = Nanos::from_micros(100);
    for i in 0..128u64 {
        sys.submit_at(
            t,
            IoOp {
                tag: i,
                kind: IoKind::Write {
                    sector: (i % 4) * (1 << 20) + (i / 4) * (CHUNK / 512) as u64,
                    data: vec![0x5a; CHUNK],
                },
            },
        );
        t += Nanos::from_micros(2);
    }
    sys.run_to_quiescence();
    sys
}

/// Every completed record's stage durations must sum exactly to its
/// end-to-end latency, and the stamps must already be time-sorted.
fn assert_telescoping(req: &ReqTracer) {
    assert!(req.completed_len() > 0, "scenario completed no samples");
    for rec in req.completed() {
        assert!(rec.stamps.len() >= 2, "req {}: too few stamps", rec.id);
        let mut sum = Nanos::ZERO;
        for w in rec.stamps.windows(2) {
            assert!(
                w[0].at <= w[1].at,
                "req {}: stamps out of order: {:?}",
                rec.id,
                rec.stamps
            );
            sum += w[1].at - w[0].at;
        }
        assert_eq!(
            sum,
            rec.e2e(),
            "req {}: stage durations must telescope to e2e",
            rec.id
        );
        assert_eq!(rec.stamps.first().expect("nonempty").stage, Stage::Inject);
        assert_eq!(rec.stamps.last().expect("nonempty").stage, Stage::Complete);
    }
}

#[test]
fn echo_stages_telescope_and_follow_the_path() {
    let sys = echo_run(SchedulerKind::Wheel);
    let req = &sys.hv.req;
    assert_eq!(req.seen(), 64);
    assert_eq!(req.sampled(), 32);
    assert_eq!(req.completed_len(), 32);
    assert_telescoping(req);
    // The echo path visits the documented stage sequence.
    for rec in req.completed() {
        let stages: Vec<Stage> = rec.stamps.iter().map(|s| s.stage).collect();
        assert_eq!(
            stages,
            vec![
                Stage::Inject,
                Stage::NicRx,
                Stage::RxDeliver,
                Stage::RingSubmit,
                Stage::BackendFetch,
                Stage::GrantCopy,
                Stage::NicTx,
                Stage::Complete,
            ],
            "req {}",
            rec.id
        );
    }
    // The e2e histogram agrees with the client's RTT stats: tracing
    // measures the same round trip the workload sees.
    let h = req.e2e_hist().expect("enabled");
    assert_eq!(h.count(), 32);
    let p50 = h.quantile(0.5).as_nanos() as f64;
    let mean = sys.metrics.ping_rtts.mean();
    assert!(
        (p50 - mean).abs() / mean < 0.1,
        "traced e2e p50 {p50} vs client RTT mean {mean}"
    );
}

#[test]
fn storage_stages_telescope_and_ride_the_rings() {
    let sys = storage_run(SchedulerKind::Wheel);
    let req = &sys.hv.req;
    assert_eq!(req.seen(), 128);
    assert_eq!(req.sampled(), 43);
    assert_eq!(req.completed_len(), 43);
    assert_telescoping(req);
    for rec in req.completed() {
        for want in [
            Stage::RingSubmit,
            Stage::BackendFetch,
            Stage::NvmeSubmit,
            Stage::NvmeComplete,
            Stage::IrqDeliver,
        ] {
            assert!(
                rec.stamp_of(want).is_some(),
                "req {} missed {}",
                rec.id,
                want.name()
            );
        }
    }
    // With four rings, the sampled population spreads across queues.
    let queues: std::collections::BTreeSet<u16> = req
        .completed()
        .filter_map(|r| r.stamp_of(Stage::BackendFetch).and_then(|s| s.qid))
        .collect();
    assert_eq!(queues.len(), 4, "samples must land on all 4 rings");
}

#[test]
fn digests_are_identical_across_runs_and_schedulers() {
    let heap = digest(&echo_run(SchedulerKind::Heap).hv.req);
    let wheel = digest(&echo_run(SchedulerKind::Wheel).hv.req);
    assert_eq!(heap, wheel, "echo: heap and wheel must agree byte for byte");
    let again = digest(&echo_run(SchedulerKind::Wheel).hv.req);
    assert_eq!(wheel, again, "echo: same seed must reproduce");

    let heap = digest(&storage_run(SchedulerKind::Heap).hv.req);
    let wheel = digest(&storage_run(SchedulerKind::Wheel).hv.req);
    assert_eq!(heap, wheel, "storage: heap and wheel must agree");
    let again = digest(&storage_run(SchedulerKind::Wheel).hv.req);
    assert_eq!(wheel, again, "storage: same seed must reproduce");
}

#[test]
fn flow_annotated_exports_validate_and_are_deterministic() {
    for (name, a, b) in [
        (
            "echo",
            echo_run(SchedulerKind::Heap).hv.export_chrome_trace(),
            echo_run(SchedulerKind::Wheel).hv.export_chrome_trace(),
        ),
        (
            "storage",
            storage_run(SchedulerKind::Heap).hv.export_chrome_trace(),
            storage_run(SchedulerKind::Wheel).hv.export_chrome_trace(),
        ),
    ] {
        assert_eq!(a, b, "{name}: flow-annotated exports must be identical");
        let events = chrome::validate(&a).expect("export must validate");
        assert!(events > 0, "{name}: empty export");
        // The flows really are in the document: one begin and one end
        // per completed sampled request.
        assert!(a.contains("\"ph\":\"s\""), "{name}: no flow begins");
        assert!(a.contains("\"bp\":\"e\""), "{name}: no flow ends");
    }
}

#[test]
fn untraced_runs_mint_nothing_and_export_without_flows() {
    let mut sys = SystemConfig::new(BackendOs::Kite, 11)
        .tracing(1 << 16)
        .build_net();
    for i in 0..8u16 {
        sys.ping_at(Nanos::from_millis(1 + 2 * u64::from(i)), i);
    }
    sys.run_to_quiescence();
    assert!(!sys.hv.req.is_enabled());
    assert_eq!(sys.hv.req.completed_len(), 0);
    let doc = sys.hv.export_chrome_trace();
    chrome::validate(&doc).expect("export must validate");
    assert!(!doc.contains("\"ph\":\"s\""), "no flows without tracing");
}
