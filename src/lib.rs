//! **kite** — a full reproduction of *Kite: Lightweight Critical Service
//! Domains* (EuroSys '22) in Rust, over a simulated Xen substrate.
//!
//! This facade re-exports the workspace crates:
//!
//! * [`sim`] — deterministic discrete-event substrate;
//! * [`xen`] — grant tables, event channels, xenstore/xenbus, shared rings;
//! * [`net`] — packet codecs, learning bridge, NAT, DHCP wire format;
//! * [`devices`] — NIC and NVMe models with real (sparse) data;
//! * [`rumprun`] / [`linux`] — the unikernel runtime and the Linux baseline;
//! * [`fs`] — the extent filesystem storage workloads run on;
//! * [`frontends`] — stock netfront/blkfront;
//! * [`core`] — **the paper's contribution**: netback, blkback, backend
//!   invocation, the bridge/block apps and the DHCP daemon;
//! * [`system`] — full-system scenarios (client ⇄ driver domain ⇄ guest);
//! * [`trace`] — virtual-time tracing, metrics snapshots, Chrome-trace export;
//! * [`prof`] — scoped-span wall-clock self-profiler (tables, collapsed
//!   stacks for flamegraphs);
//! * [`security`] — gadget scanner, CVE analysis, attack-surface reports;
//! * [`workloads`] — one generator per paper figure.
//!
//! Start with `examples/quickstart.rs`, then `cargo run --release -p
//! kite-bench --bin repro -- --all` to regenerate every figure.

pub use kite_core as core;
pub use kite_devices as devices;
pub use kite_frontends as frontends;
pub use kite_fs as fs;
pub use kite_linux as linux;
pub use kite_net as net;
pub use kite_prof as prof;
pub use kite_rumprun as rumprun;
pub use kite_security as security;
pub use kite_sim as sim;
pub use kite_system as system;
pub use kite_trace as trace;
pub use kite_workloads as workloads;
pub use kite_xen as xen;
