//! Scheduler-backend equivalence: the timer wheel must be **byte
//! identical** to the binary-heap oracle — same seed, same backend API,
//! same Chrome trace export and same rendered metrics, across
//! representative full-system runs. Determinism is the repo's
//! foundational invariant, so swapping the hot-path data structure is
//! only admissible with this proof.

use std::cell::RefCell;
use std::rc::Rc;

use kite::sim::{EventQueue, Nanos, Pcg, SchedulerKind, TimerWheel};
use kite::system::{addrs, BackendOs, MonitorConfig, Reply, Side, SystemConfig};
use kite::xen::{FaultPlan, QueueMode};

/// Full observable state of a finished net run: virtual end time, event
/// count, the Chrome trace bytes and the rendered metrics JSON.
type RunDigest = (u64, u64, String, String);

fn digest_of(sys: &kite::system::NetSystem, scenario: &str) -> RunDigest {
    let snap = sys.metrics_snapshot(scenario);
    (
        sys.now().as_nanos(),
        sys.events_processed(),
        sys.hv.export_chrome_trace(),
        kite::trace::metrics::render_json(&[snap]),
    )
}

/// The quickstart echo scenario (client → guest echo server → client)
/// produces byte-identical traces and metrics on both backends.
#[test]
fn echo_run_is_byte_identical_across_backends() {
    let run = |kind: SchedulerKind| {
        let mut sys = SystemConfig::new(BackendOs::Kite, 42)
            .scheduler(kind)
            .tracing(1 << 16)
            .build_net();
        assert_eq!(sys.scheduler_kind(), kind);
        sys.set_guest_app(Box::new(|_, msg| {
            vec![Reply {
                dst_ip: msg.src_ip,
                dst_port: msg.src_port,
                src_port: msg.dst_port,
                payload: msg.payload.clone(),
                cost: Nanos::from_micros(5),
            }]
        }));
        for f in 0..16u16 {
            sys.send_udp_at(
                Nanos::from_millis(1 + u64::from(f)),
                Side::Client,
                addrs::GUEST,
                7,
                40000 + f,
                vec![f as u8; 400],
            );
        }
        sys.run_to_quiescence();
        digest_of(&sys, "sched_equiv/echo")
    };
    assert_eq!(
        run(SchedulerKind::Heap),
        run(SchedulerKind::Wheel),
        "echo run must not depend on the scheduler backend"
    );
}

/// A 4-queue netback drain burst (64 Toeplitz-steered flows) produces
/// byte-identical traces and metrics on both backends.
#[test]
fn four_queue_drain_is_byte_identical_across_backends() {
    let run = |kind: SchedulerKind| {
        let mut sys = SystemConfig::new(BackendOs::Kite, 7)
            .queues(4)
            .scheduler(kind)
            .tracing(1 << 16)
            .build_net();
        for i in 0..512u64 {
            sys.send_udp_at(
                Nanos::from_micros(10 + 20 * (i / 64)),
                Side::Guest,
                addrs::CLIENT,
                9999,
                1200 + (i % 64) as u16,
                vec![i as u8; 1400],
            );
        }
        sys.run_to_quiescence();
        digest_of(&sys, "sched_equiv/drain4q")
    };
    assert_eq!(
        run(SchedulerKind::Heap),
        run(SchedulerKind::Wheel),
        "4-queue drain must not depend on the scheduler backend"
    );
}

/// A watchdog-detected driver-domain kill and recovery — the run with
/// the most scheduling variety (heartbeats, probes, boot model, queued
/// traffic replay) — produces byte-identical traces and metrics.
#[test]
fn kill_recovery_run_is_byte_identical_across_backends() {
    let run = |kind: SchedulerKind| {
        let mut sys = SystemConfig::new(BackendOs::Kite, 11)
            .scheduler(kind)
            .tracing(1 << 18)
            .watchdog(MonitorConfig::default())
            .build_net();
        for i in 0..120u64 {
            sys.send_udp_at(
                Nanos::from_millis(1 + 250 * i),
                Side::Guest,
                addrs::CLIENT,
                9999,
                1234,
                vec![i as u8; 1400],
            );
        }
        sys.inject_faults(FaultPlan::seeded(11).with_kill_at(Nanos::from_secs(2)));
        sys.run_to_quiescence();
        digest_of(&sys, "sched_equiv/recovery")
    };
    assert_eq!(
        run(SchedulerKind::Heap),
        run(SchedulerKind::Wheel),
        "kill/recovery must not depend on the scheduler backend"
    );
}

/// Property test: a random schedule/cancel/pop workload pops the exact
/// same (time, payload) sequence from both backends, and their exact
/// `len()` accounting agrees throughout.
#[test]
fn random_ops_pop_identically_on_both_backends() {
    let mut rng = Pcg::seeded(0x5eed);
    for case in 0..50 {
        let mut heap: EventQueue<u64> = EventQueue::new();
        let mut wheel: TimerWheel<u64> = TimerWheel::new();
        let mut live: Vec<(kite::sim::EventId, kite::sim::EventId)> = Vec::new();
        let nops = 200 + rng.index(800);
        for i in 0..nops {
            match rng.index(3) {
                0 => {
                    // Delays span sub-tick to multi-level distances.
                    let delay = Nanos::from_nanos(rng.range_u64(1, 40_000_000));
                    let payload = (case * 10_000 + i) as u64;
                    let h = heap.schedule_in(delay, payload);
                    let w = wheel.schedule_in(delay, payload);
                    live.push((h, w));
                }
                1 if !live.is_empty() => {
                    let k = rng.index(live.len());
                    let (h, w) = live.swap_remove(k);
                    assert_eq!(heap.cancel(h), wheel.cancel(w), "cancel verdicts agree");
                }
                _ => {
                    // Popped ids deliberately stay in `live`: a later
                    // cancel on them must return false on BOTH backends
                    // (generation tags make stale ids inert).
                    assert_eq!(heap.pop(), wheel.pop(), "pop sequences diverged");
                }
            }
            assert_eq!(heap.len(), wheel.len(), "exact len agrees");
        }
        // Drain both to the end: the tails must agree too.
        loop {
            let (h, w) = (heap.pop(), wheel.pop());
            assert_eq!(h, w, "tail pop sequences diverged");
            if h.is_none() {
                break;
            }
        }
    }
}

/// The deprecated constructors remain byte-for-byte equivalent to the
/// builder they wrap — the one place they are still exercised.
#[test]
#[allow(clippy::disallowed_methods)]
fn legacy_constructors_match_builder() {
    use kite::system::{NetSystem, StorSystem};
    let run_net = |mut sys: kite::system::NetSystem| {
        sys.send_udp_at(
            Nanos::from_millis(1),
            Side::Guest,
            addrs::CLIENT,
            9999,
            1234,
            vec![7u8; 900],
        );
        sys.run_to_quiescence();
        (sys.now().as_nanos(), sys.events_processed())
    };
    let wrapped = run_net(NetSystem::new_with_queues(
        BackendOs::Kite,
        9,
        QueueMode::Multi(2),
    ));
    let built = run_net(
        SystemConfig::new(BackendOs::Kite, 9)
            .queue_mode(QueueMode::Multi(2))
            .build_net(),
    );
    assert_eq!(wrapped, built, "NetSystem wrapper drifted from builder");

    let tuning = kite::core::BlkbackTuning::default();
    let run_stor = |mut sys: kite::system::StorSystem| {
        let done: Rc<RefCell<u64>> = Rc::new(RefCell::new(0));
        let d2 = done.clone();
        sys.set_handler(Box::new(move |_, _| {
            *d2.borrow_mut() += 1;
            Vec::new()
        }));
        sys.submit_at(
            Nanos::from_millis(1),
            kite::system::IoOp {
                tag: 1,
                kind: kite::system::IoKind::Write {
                    sector: 0,
                    data: vec![0xa5; 4096],
                },
            },
        );
        sys.run_to_quiescence();
        let completions = *done.borrow();
        (sys.now().as_nanos(), sys.events_processed(), completions)
    };
    let wrapped = run_stor(StorSystem::with_tuning_queues(
        BackendOs::Kite,
        9,
        tuning,
        QueueMode::Multi(2),
    ));
    let built = run_stor(
        SystemConfig::new(BackendOs::Kite, 9)
            .tuning(tuning)
            .queue_mode(QueueMode::Multi(2))
            .build_stor(),
    );
    assert_eq!(wrapped, built, "StorSystem wrapper drifted from builder");
}
