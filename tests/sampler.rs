//! Time-series sampler invariants at the system level.
//!
//! The sampler is driven by *virtual* time — `SampleTick` events on the
//! ordinary scheduler — so its exports are part of the determinism
//! surface: same seed, same bytes, regardless of the scheduler backend
//! or how the host happens to schedule the run. Wall-clock profiling
//! (`kite-prof`) stays quarantined from these exports.

use kite::sim::{Nanos, SchedulerKind};
use kite::system::{addrs, BackendOs, IoKind, IoOp, Reply, Side, SystemConfig};

/// Echo traffic with sampling enabled; returns the sampler's CSV and
/// JSON exports.
fn sampled_echo(kind: SchedulerKind, capacity: usize) -> (String, String) {
    let mut sys = SystemConfig::new(BackendOs::Kite, 42)
        .scheduler(kind)
        .queues(4)
        .sampling(Nanos::from_micros(200), capacity)
        .build_net();
    sys.set_guest_app(Box::new(|_, msg| {
        vec![Reply {
            dst_ip: msg.src_ip,
            dst_port: msg.src_port,
            src_port: msg.dst_port,
            payload: msg.payload.clone(),
            cost: Nanos::from_micros(1),
        }]
    }));
    for i in 0..512u64 {
        sys.send_udp_at(
            Nanos::from_micros(10 + 20 * (i / 64)),
            Side::Client,
            addrs::GUEST,
            7777,
            1200 + (i % 64) as u16,
            vec![i as u8; 1400],
        );
    }
    sys.run_to_quiescence();
    let sampler = sys.sampler().expect("sampling was enabled");
    (sampler.to_csv(), sampler.to_json())
}

#[test]
fn sampler_exports_are_byte_identical_across_scheduler_backends() {
    let (heap_csv, heap_json) = sampled_echo(SchedulerKind::Heap, 4096);
    let (wheel_csv, wheel_json) = sampled_echo(SchedulerKind::Wheel, 4096);
    assert!(!heap_csv.is_empty());
    assert_eq!(
        heap_csv, wheel_csv,
        "sampler CSV must not depend on the backend"
    );
    assert_eq!(
        heap_json, wheel_json,
        "sampler JSON must not depend on the backend"
    );
    // And same-seed reruns reproduce the bytes exactly.
    let (again_csv, again_json) = sampled_echo(SchedulerKind::Heap, 4096);
    assert_eq!(heap_csv, again_csv);
    assert_eq!(heap_json, again_json);
}

#[test]
fn sampler_ring_is_bounded_and_drops_oldest() {
    let mut sys = SystemConfig::new(BackendOs::Kite, 7)
        .sampling(Nanos::from_micros(50), 8)
        .build_net();
    // Spread traffic over many sampling intervals so the ring overflows.
    for i in 0..256u64 {
        sys.send_udp_at(
            Nanos::from_micros(10 + 40 * i),
            Side::Guest,
            addrs::CLIENT,
            9999,
            1200,
            vec![i as u8; 600],
        );
    }
    sys.run_to_quiescence();
    let sampler = sys.sampler().expect("sampling was enabled");
    assert_eq!(sampler.len(), 8, "ring must stay at capacity");
    assert!(sampler.evicted() > 0, "the long run must have overflowed");
    // Oldest retained sample starts where the evicted ones left off.
    let first = sampler.samples().next().expect("ring is full");
    assert_eq!(
        first.at.as_nanos(),
        (sampler.evicted() + 1) * Nanos::from_micros(50).as_nanos(),
    );
    // The eviction count is part of the JSON export.
    assert!(sampler
        .to_json()
        .contains(&format!("\"evicted\":{}", sampler.evicted())));
}

#[test]
fn storage_system_sampler_records_io_counters() {
    let mut sys = SystemConfig::new(BackendOs::Kite, 9)
        .sampling(Nanos::from_micros(100), 1024)
        .build_stor();
    for i in 0..64u64 {
        sys.submit_at(
            Nanos::from_micros(10 + 50 * i),
            IoOp {
                tag: i,
                kind: IoKind::Write {
                    sector: 8 * i,
                    data: vec![i as u8; 4096],
                },
            },
        );
    }
    sys.run_to_quiescence();
    let sampler = sys.sampler().expect("sampling was enabled");
    assert!(sampler.column_names().contains(&"ios"));
    assert!(sampler.column_names().contains(&"write_bytes"));
    assert!(!sampler.is_empty());
    // Counter columns record deltas: summing write_bytes over the whole
    // series recovers the total volume written.
    let wb = sampler
        .column_names()
        .iter()
        .position(|c| *c == "write_bytes")
        .expect("column exists");
    let total: u64 = sampler.samples().map(|s| s.values[wb]).sum();
    assert_eq!(total, 64 * 4096, "summed deltas must equal bytes written");
}
