//! Cross-crate integration tests: the whole stack assembled by hand (no
//! scenario builder), failure injection, and the paper's headline claims.

use std::cell::RefCell;
use std::rc::Rc;

use kite::core::{provision_device, BackendManager, BlkbackTuning, NetbackInstance};
use kite::frontends::Netfront;
use kite::net::MacAddr;
use kite::rumprun::kite_profile;
use kite::sim::Nanos;
use kite::system::{addrs, BackendOs, IoKind, IoOp, NetSystem, Reply, Side};
use kite::xen::xenbus::{read_state, switch_state};
use kite::xen::{DeviceKind, DevicePaths, DomainKind, Hypervisor, XenbusState};

/// The full xenbus handshake, driven only by watches and state writes —
/// no scenario builder shortcuts.
#[test]
fn manual_xenbus_handshake_to_connected() {
    let mut hv = Hypervisor::new();
    hv.create_domain("Domain-0", DomainKind::Dom0, 8192, 4);
    let dd = hv.create_domain("netbackend", DomainKind::Driver, 1024, 1);
    let gu = hv.create_domain("guest", DomainKind::Guest, 5120, 22);

    let mut mgr = BackendManager::new(dd, DeviceKind::Vif);
    mgr.start(&mut hv).unwrap();
    hv.store.take_events();

    // Toolstack provisions; the driver domain's watch fires.
    let paths = DevicePaths::new(gu, dd, DeviceKind::Vif, 0);
    provision_device(&mut hv, &paths).unwrap();
    let events = hv.store.take_events();
    assert!(events.iter().any(|e| mgr.owns_event(e)), "watch fired");

    // Handler scans: backend advertises InitWait, nothing to pair yet.
    assert!(mgr.scan(&mut hv).unwrap().is_empty());
    assert_eq!(
        read_state(&mut hv.store, gu, &paths.backend_state()),
        XenbusState::InitWait
    );

    // Guest's netfront publishes its details and goes Initialised.
    let nf = Netfront::connect(&mut hv, &paths, MacAddr::local(1)).unwrap();
    let events = hv.store.take_events();
    assert!(
        events.iter().any(|e| mgr.owns_event(e)),
        "frontend write fired watch"
    );

    // Scan pairs it; the backend instance connects.
    let ready = mgr.scan(&mut hv).unwrap();
    assert_eq!(ready.len(), 1);
    let nb = NetbackInstance::connect(&mut hv, &ready[0], kite_profile()).unwrap();
    assert_eq!(
        read_state(&mut hv.store, gu, &paths.backend_state()),
        XenbusState::Connected
    );
    switch_state(
        &mut hv.store,
        gu,
        &paths.frontend_state(),
        XenbusState::Connected,
    )
    .unwrap();
    assert_eq!(nb.vif, format!("vif{}.0", gu.0));
    drop(nf);
}

/// Disconnect tears everything down: channel closed, rings unmapped,
/// state Closed, and the manager can re-pair after a reconnect.
#[test]
fn backend_teardown_and_reconnect() {
    let mut hv = Hypervisor::new();
    hv.create_domain("Domain-0", DomainKind::Dom0, 8192, 4);
    let dd = hv.create_domain("netbackend", DomainKind::Driver, 1024, 1);
    let gu = hv.create_domain("guest", DomainKind::Guest, 5120, 22);
    let mut mgr = BackendManager::new(dd, DeviceKind::Vif);
    mgr.start(&mut hv).unwrap();
    let paths = DevicePaths::new(gu, dd, DeviceKind::Vif, 0);
    provision_device(&mut hv, &paths).unwrap();
    mgr.scan(&mut hv).unwrap();
    let _nf = Netfront::connect(&mut hv, &paths, MacAddr::local(1)).unwrap();
    let ready = mgr.scan(&mut hv).unwrap();
    let nb = NetbackInstance::connect(&mut hv, &ready[0], kite_profile()).unwrap();

    let maps_before = hv.grants.active_maps(dd);
    assert!(maps_before >= 2, "tx+rx rings mapped");
    nb.close(&mut hv).unwrap();
    assert_eq!(hv.grants.active_maps(dd), 0, "all ring mappings released");
    assert_eq!(
        read_state(&mut hv.store, gu, &paths.backend_state()),
        XenbusState::Closed
    );
    mgr.forget(&mut hv, gu, 0).unwrap();
}

/// IOMMU confinement: an errant DMA from the driver domain's device
/// faults and is charged to the driver domain, never touching the page.
#[test]
fn iommu_confines_errant_dma() {
    let mut hv = Hypervisor::new();
    hv.create_domain("Domain-0", DomainKind::Dom0, 8192, 4);
    let dd = hv.create_domain("netbackend", DomainKind::Driver, 1024, 1);
    let gu = hv.create_domain("guest", DomainKind::Guest, 5120, 22);

    let secret = hv.alloc_page(gu).unwrap();
    hv.mem.page_mut(secret).unwrap()[..6].copy_from_slice(b"secret");
    let dma_buf = hv.alloc_page(dd).unwrap();
    hv.iommu.map(dd, dma_buf);

    // Legit DMA to the mapped buffer works.
    hv.iommu.check_dma(dd, dma_buf, true).unwrap();
    // Errant DMA to the guest's page faults.
    assert!(hv.iommu.check_dma(dd, secret, true).is_err());
    assert_eq!(hv.iommu.faults_of(dd), 1);
    assert_eq!(
        &hv.mem.page(secret).unwrap()[..6],
        b"secret",
        "page untouched"
    );
}

/// A frontend revoking grants mid-flight produces backend errors, not
/// corruption: netback reports Tx errors and the system stays live.
#[test]
fn grant_revocation_is_survivable() {
    let mut sys = NetSystem::new(BackendOs::Kite, 99);
    let got = Rc::new(RefCell::new(0u64));
    let g = got.clone();
    sys.set_client_app(Box::new(move |_, _| {
        *g.borrow_mut() += 1;
        Vec::new()
    }));
    // Normal traffic first.
    for i in 0..10 {
        sys.send_udp_at(
            Nanos::from_micros(100 * (i + 1)),
            Side::Guest,
            addrs::CLIENT,
            9000,
            1000,
            vec![1; 256],
        );
    }
    sys.run_to_quiescence();
    assert_eq!(*got.borrow(), 10);
    assert_eq!(sys.netback_stats().tx_errors, 0);
}

/// Storage path with all optimizations disabled still moves correct bytes
/// (slower, but byte-for-byte identical) — the ablation's safety net.
#[test]
fn storage_correct_with_all_optimizations_off() {
    let tuning = BlkbackTuning {
        batching: false,
        persistent_grants: false,
        indirect_segments: false,
        persistent_cap: 0,
        grant_copy: false,
    };
    let mut sys = kite::system::SystemConfig::new(BackendOs::Kite, 5)
        .tuning(tuning)
        .build_stor();
    let data: Vec<u8> = (0..88 * 1024).map(|i| (i % 239) as u8).collect();
    sys.submit_at(
        Nanos::from_millis(1),
        IoOp {
            tag: 1,
            kind: IoKind::Write {
                sector: 128,
                data: data.clone(),
            },
        },
    );
    sys.run_to_quiescence();
    let back: Rc<RefCell<Option<Vec<u8>>>> = Rc::new(RefCell::new(None));
    let b2 = back.clone();
    sys.set_handler(Box::new(move |_, done| {
        *b2.borrow_mut() = done.data.clone();
        Vec::new()
    }));
    sys.submit_at(
        sys.now() + Nanos::from_millis(1),
        IoOp {
            tag: 2,
            kind: IoKind::Read {
                sector: 128,
                len: data.len(),
            },
        },
    );
    sys.run_to_quiescence();
    assert_eq!(back.borrow().as_deref(), Some(data.as_slice()));
    let st = sys.blkback_stats();
    assert_eq!(st.persistent_hits, 0);
    assert!(st.grant_maps > 0, "every segment mapped fresh: {st:?}");
}

/// The paper's headline security claims, end to end.
#[test]
fn headline_claims_hold() {
    // C1: 10x faster boot.
    let kite_boot = kite::rumprun::kite_boot().total().as_secs_f64();
    let ubuntu_boot = kite::linux::ubuntu_boot().total().as_secs_f64();
    assert!(ubuntu_boot / kite_boot >= 10.0);
    // 10x fewer syscalls.
    assert!(
        kite::linux::ubuntu_driver_domain_syscalls().len()
            >= 10 * kite::rumprun::kite_network_syscalls().len()
    );
    // ~10x smaller image.
    let ratio = kite::linux::ubuntu_image_bytes() as f64
        / kite::rumprun::kite_network_image().total_bytes as f64;
    assert!(ratio >= 8.0);
    // All Table 3 CVEs mitigated.
    let cves = kite::security::table3_cves();
    assert_eq!(
        kite::security::DomainSurface::kite_network()
            .mitigated(&cves)
            .len(),
        11
    );
}

/// Two guests… the same driver domain serving two frontends is the
/// design's multi-instance claim; exercise the manager + paths layer.
#[test]
fn two_frontends_one_driver_domain() {
    let mut hv = Hypervisor::new();
    hv.create_domain("Domain-0", DomainKind::Dom0, 8192, 4);
    let dd = hv.create_domain("netbackend", DomainKind::Driver, 1024, 1);
    let g1 = hv.create_domain("guest1", DomainKind::Guest, 1024, 2);
    let g2 = hv.create_domain("guest2", DomainKind::Guest, 1024, 2);
    let mut mgr = BackendManager::new(dd, DeviceKind::Vif);
    mgr.start(&mut hv).unwrap();
    let mut backends = Vec::new();
    for g in [g1, g2] {
        let paths = DevicePaths::new(g, dd, DeviceKind::Vif, 0);
        provision_device(&mut hv, &paths).unwrap();
        mgr.scan(&mut hv).unwrap();
        let _nf = Netfront::connect(&mut hv, &paths, MacAddr::local(g.0 as u32)).unwrap();
        for ready in mgr.scan(&mut hv).unwrap() {
            backends.push(NetbackInstance::connect(&mut hv, &ready, kite_profile()).unwrap());
        }
    }
    assert_eq!(backends.len(), 2);
    assert_ne!(backends[0].vif, backends[1].vif);
}

/// Determinism across the whole stack: same seed, same figures.
#[test]
fn figures_are_deterministic() {
    let a = kite::workloads::latency::ping(BackendOs::Kite, 10, 7).mean();
    let b = kite::workloads::latency::ping(BackendOs::Kite, 10, 7).mean();
    assert_eq!(a, b);
    let a = kite::workloads::dd::run(BackendOs::Kite, true, 16 << 20, 3).mbps;
    let b = kite::workloads::dd::run(BackendOs::Kite, true, 16 << 20, 3).mbps;
    assert_eq!(a, b);
}

/// Guest app replies flow through even when the guest must also absorb a
/// concurrent flood (mixed latency + throughput traffic).
#[test]
fn mixed_traffic_keeps_echo_alive() {
    let mut sys = NetSystem::new(BackendOs::Kite, 31);
    sys.set_guest_app(Box::new(|_, msg| {
        if msg.dst_port == 7 {
            vec![Reply {
                dst_ip: msg.src_ip,
                dst_port: msg.src_port,
                src_port: 7,
                payload: msg.payload.clone(),
                cost: Nanos::from_micros(2),
            }]
        } else {
            Vec::new()
        }
    }));
    let echoes = Rc::new(RefCell::new(0u64));
    let e2 = echoes.clone();
    sys.set_client_app(Box::new(move |_, msg| {
        if msg.src_port == 7 {
            *e2.borrow_mut() += 1;
        }
        Vec::new()
    }));
    // Background flood on port 5001 + echoes on port 7.
    for i in 0..2000u64 {
        sys.send_udp_at(
            Nanos::from_micros(10 * i),
            Side::Client,
            addrs::GUEST,
            5001,
            6000,
            vec![0; 1400],
        );
    }
    for i in 0..20u64 {
        sys.send_udp_at(
            Nanos::from_millis(i + 1),
            Side::Client,
            addrs::GUEST,
            7,
            41000 + i as u16,
            vec![9; 64],
        );
    }
    sys.run_to_quiescence();
    assert_eq!(*echoes.borrow(), 20, "echoes survive the flood");
}
