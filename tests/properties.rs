//! Property-based tests over the core data structures and protocols.
//!
//! Randomized cases are driven by the workspace's own deterministic
//! [`Pcg`] generator (no external property-testing dependency, which the
//! offline build cannot fetch): every test derives its cases from a fixed
//! seed, so failures replay bit-for-bit.

use kite::core::BlkbackTuning;
use kite::core::{provision_device, BackendManager, NetbackInstance};
use kite::frontends::Netfront;
use kite::fs::{ExtentAllocator, Fs};
use kite::net::{
    ArpPacket, DhcpMessage, DhcpMessageType, EtherType, EthernetFrame, IcmpMessage, IpProto,
    Ipv4Packet, MacAddr, TcpSegment, UdpDatagram,
};
use kite::rumprun::kite_profile;
use kite::sim::{Nanos, Pcg};
use kite::system::{BackendOs, IoKind, IoOp};
use kite::xen::netif::{NetifRxRequest, NetifTxRequest, NetifTxResponse};
use kite::xen::ring::{BackRing, FrontRing, RingEntry};
use kite::xen::{
    CopyMode, DeviceKind, DevicePaths, DomainId, DomainKind, GrantRef, HypercallKind, Hypervisor,
    PageId, XenbusState, PAGE_SIZE,
};
use std::cell::RefCell;
use std::rc::Rc;

/// Toy ring entry.
#[derive(Clone, Debug, PartialEq, Eq)]
struct E(u64);
impl RingEntry for E {
    const SIZE: usize = 8;
    fn write_to(&self, buf: &mut [u8]) {
        buf.copy_from_slice(&self.0.to_le_bytes());
    }
    fn read_from(buf: &[u8]) -> Self {
        E(u64::from_le_bytes(buf[..8].try_into().unwrap()))
    }
}

fn random_bytes(rng: &mut Pcg, len: usize) -> Vec<u8> {
    let mut v = vec![0u8; len];
    rng.fill_bytes(&mut v);
    v
}

/// The shared-ring protocol never loses, duplicates or reorders entries
/// under arbitrary interleavings of produce/consume steps.
#[test]
fn ring_fifo_under_arbitrary_interleaving() {
    let mut rng = Pcg::new(0x41, 1);
    for _ in 0..100 {
        let nops = rng.index(299) + 1;
        let mut page = vec![0u8; 4096];
        let mut front: FrontRing<E, E> = FrontRing::init(&mut page);
        let mut back: BackRing<E, E> = BackRing::attach();
        let mut next = 0u64;
        let mut expect_req = 0u64;
        let mut expect_rsp = 0u64;
        let mut served = std::collections::VecDeque::new();
        for _ in 0..nops {
            match rng.index(4) {
                0 => {
                    if !front.full() {
                        front.push_request(&mut page, &E(next)).unwrap();
                        next += 1;
                        front.push_requests(&mut page);
                    }
                }
                1 => {
                    if let Some(r) = back.consume_request(&page).unwrap() {
                        assert_eq!(r.0, expect_req, "requests FIFO");
                        expect_req += 1;
                        served.push_back(r.0);
                    }
                }
                2 => {
                    if let Some(v) = served.front().copied() {
                        if back.free_responses() > 0 && back.push_response(&mut page, &E(v)).is_ok()
                        {
                            served.pop_front();
                            back.push_responses(&mut page);
                        }
                    }
                }
                _ => {
                    if let Some(r) = front.consume_response(&page).unwrap() {
                        assert_eq!(r.0, expect_rsp, "responses FIFO");
                        expect_rsp += 1;
                    }
                }
            }
        }
    }
}

/// Ethernet/IPv4/UDP stacking round-trips arbitrary payloads.
#[test]
fn packet_stack_roundtrip() {
    let mut rng = Pcg::seeded(0x9a11);
    for _ in 0..64 {
        let plen = rng.index(1400);
        let payload = random_bytes(&mut rng, plen);
        let sp = rng.range_u64(1, 65535) as u16;
        let dp = rng.range_u64(1, 65535) as u16;
        let src = "10.1.2.3".parse().unwrap();
        let dst = "10.4.5.6".parse().unwrap();
        let udp = UdpDatagram::new(sp, dp, payload.clone());
        let ip = Ipv4Packet::new(src, dst, IpProto::Udp, udp.encode(src, dst));
        let eth = EthernetFrame::new(
            MacAddr::local(1),
            MacAddr::local(2),
            EtherType::Ipv4,
            ip.encode(),
        );
        let bytes = eth.encode();

        let eth2 = EthernetFrame::decode(&bytes).unwrap();
        assert_eq!(eth2.ethertype, EtherType::Ipv4);
        let ip2 = Ipv4Packet::decode(&eth2.payload).unwrap();
        assert_eq!(ip2.src, src);
        let udp2 = UdpDatagram::decode(&ip2.payload, src, dst).unwrap();
        assert_eq!(udp2.payload, payload);
        assert_eq!((udp2.src_port, udp2.dst_port), (sp, dp));
    }
}

/// Any single-bit corruption in an IPv4 header is detected (exhaustive
/// over all 160 header bits — no sampling needed).
#[test]
fn ipv4_header_bitflip_detected() {
    for bit in 0..(20 * 8) {
        let ip = Ipv4Packet::new(
            "10.0.0.1".parse().unwrap(),
            "10.0.0.2".parse().unwrap(),
            IpProto::Tcp,
            vec![1, 2, 3],
        );
        let mut bytes = ip.encode();
        bytes[bit / 8] ^= 1 << (bit % 8);
        // Either the version check or the checksum must catch it.
        assert!(Ipv4Packet::decode(&bytes).is_none() || bit / 8 >= 20);
    }
}

/// TCP segments round-trip.
#[test]
fn tcp_roundtrip() {
    let mut rng = Pcg::seeded(0x7c9);
    for _ in 0..64 {
        let plen = rng.index(1000);
        let payload = random_bytes(&mut rng, plen);
        let src = "10.0.0.1".parse().unwrap();
        let dst = "10.0.0.2".parse().unwrap();
        let s = TcpSegment {
            src_port: 80,
            dst_port: 12345,
            seq: rng.next_u32(),
            ack: rng.next_u32(),
            flags: kite::net::tcp::flags::ACK,
            window: rng.next_u32() as u16,
            payload,
        };
        let bytes = s.encode(src, dst);
        assert_eq!(TcpSegment::decode(&bytes, src, dst), Some(s));
    }
}

/// ICMP echo round-trips.
#[test]
fn icmp_roundtrip() {
    let mut rng = Pcg::seeded(0x1c3);
    for _ in 0..64 {
        let m = IcmpMessage::EchoRequest {
            ident: rng.next_u32() as u16,
            seq: rng.next_u32() as u16,
            payload: {
                let plen = rng.index(256);
                random_bytes(&mut rng, plen)
            },
        };
        assert_eq!(IcmpMessage::decode(&m.encode()), Some(m));
    }
}

/// ARP round-trips.
#[test]
fn arp_roundtrip() {
    let mut rng = Pcg::seeded(0xa59);
    for _ in 0..64 {
        let a = rng.next_u32();
        let b = rng.next_u32();
        let p = ArpPacket::request(
            MacAddr::local(a),
            std::net::Ipv4Addr::from(a),
            std::net::Ipv4Addr::from(b),
        );
        assert_eq!(ArpPacket::decode(&p.encode()), Some(p));
    }
}

/// DHCP messages round-trip with arbitrary option combinations.
#[test]
fn dhcp_roundtrip() {
    let mut rng = Pcg::seeded(0xd4c7);
    for _ in 0..64 {
        let mut m = DhcpMessage::client(
            DhcpMessageType::Request,
            rng.next_u32(),
            MacAddr::local(rng.next_u32()),
        );
        m.requested_ip = rng
            .chance(0.5)
            .then(|| std::net::Ipv4Addr::from(rng.next_u32()));
        m.lease_secs = rng.chance(0.5).then(|| rng.next_u32());
        assert_eq!(DhcpMessage::decode(&m.encode()), Some(m));
    }
}

/// The extent allocator conserves blocks under arbitrary churn.
#[test]
fn allocator_conserves_blocks() {
    let mut rng = Pcg::seeded(0xa110c);
    for _ in 0..64 {
        let total = 2048;
        let mut a = ExtentAllocator::new(total);
        let mut held: Vec<Vec<kite::fs::Extent>> = Vec::new();
        for _ in 0..rng.index(199) + 1 {
            let free = rng.chance(0.5);
            let n = rng.range_u64(1, 40);
            if free && !held.is_empty() {
                for e in held.pop().unwrap() {
                    a.free_extent(e);
                }
            } else if let Some(e) = a.alloc(n) {
                assert_eq!(e.iter().map(|x| x.len).sum::<u64>(), n);
                held.push(e);
            }
            let held_total: u64 = held.iter().flatten().map(|e| e.len).sum();
            assert_eq!(a.free_blocks() + held_total, total);
        }
    }
}

/// Allocated extents never overlap.
#[test]
fn allocator_never_overlaps() {
    let mut rng = Pcg::seeded(0xa110d);
    for _ in 0..64 {
        let mut a = ExtentAllocator::new(4096);
        let mut used = std::collections::HashSet::new();
        for _ in 0..rng.index(59) + 1 {
            let n = rng.range_u64(1, 64);
            if let Some(extents) = a.alloc(n) {
                for e in extents {
                    for b in e.start..e.start + e.len {
                        assert!(used.insert(b), "block {} double-allocated", b);
                    }
                }
            }
        }
    }
}

/// FS write-then-read returns exactly the written range through the
/// device-I/O plans (byte accounting, cache on or off).
#[test]
fn fs_read_covers_written_range() {
    let mut rng = Pcg::seeded(0xf5);
    for _ in 0..32 {
        let mut fs = Fs::format(4096, 8);
        let ino = fs.create("f").unwrap();
        let mut size = 0u64;
        for _ in 0..rng.index(19) + 1 {
            let off = rng.range_u64(0, 64) * 512;
            let len = rng.index(16383) + 1;
            if fs.write(ino, off, len).is_ok() {
                size = size.max(off + len as u64);
            }
        }
        assert_eq!(fs.size(ino).unwrap(), size);
        if size > 0 {
            fs.drop_caches();
            let plan = fs.read(ino, 0, size as usize).unwrap();
            let covered: usize =
                plan.device_ios.iter().map(|io| io.bytes).sum::<usize>() + plan.cached_bytes;
            assert_eq!(covered, size as usize);
        }
    }
}

/// Grant copy moves exactly the requested bytes regardless of offsets.
#[test]
fn grant_copy_exact() {
    let mut rng = Pcg::seeded(0x9c0);
    for _ in 0..128 {
        let src_off = rng.index(4096);
        let dst_off = rng.index(4096);
        let len = rng.index(4096 - src_off.max(dst_off) + 1);
        let mut hv = Hypervisor::new();
        hv.create_domain("Domain-0", DomainKind::Dom0, 64, 1);
        let dd = hv.create_domain("dd", DomainKind::Driver, 64, 1);
        let gu = hv.create_domain("gu", DomainKind::Guest, 64, 1);
        let sp = hv.alloc_page(gu).unwrap();
        let dp = hv.alloc_page(dd).unwrap();
        for (i, b) in hv.mem.page_mut(sp).unwrap().iter_mut().enumerate() {
            *b = (i % 251) as u8;
        }
        let gref = hv.grant_access(gu, dd, sp, true).unwrap();
        hv.grant_copy(
            dd,
            kite::xen::CopySide::Grant {
                granter: gu,
                gref,
                offset: src_off,
            },
            kite::xen::CopySide::Local {
                page: dp,
                offset: dst_off,
            },
            len,
        )
        .unwrap();
        let dst = hv.mem.page(dp).unwrap();
        for i in 0..len {
            assert_eq!(dst[dst_off + i], ((src_off + i) % 251) as u8);
        }
        // Bytes outside the window stay zero.
        for (i, &b) in dst.iter().enumerate() {
            if i < dst_off || i >= dst_off + len {
                assert_eq!(b, 0);
            }
        }
    }
}

/// Xenstore transactions are serializable: a conflicting commit fails,
/// a retry applied after sees the latest value.
#[test]
fn xenstore_counter_increments_serially() {
    let mut rng = Pcg::seeded(0x5e1);
    for _ in 0..32 {
        let mut hv = Hypervisor::new();
        let d0 = hv.create_domain("Domain-0", DomainKind::Dom0, 64, 1);
        hv.store.write(d0, None, "/counter", "0").unwrap();
        let mut expected = 0u64;
        for _ in 0..rng.index(39) + 1 {
            let conflict = rng.chance(0.5);
            // The concurrent writer interferes only with the first
            // attempt; the retry then commits cleanly (as a real racing
            // writer eventually quiesces).
            let mut pending_conflict = conflict;
            loop {
                let tx = hv.store.tx_start(d0);
                let v: u64 = hv
                    .store
                    .read(d0, Some(tx), "/counter")
                    .unwrap()
                    .parse()
                    .unwrap();
                if pending_conflict {
                    hv.store
                        .write(d0, None, "/counter", &(v + 1).to_string())
                        .unwrap();
                    expected += 1;
                    pending_conflict = false;
                }
                hv.store
                    .write(d0, Some(tx), "/counter", &(v + 1).to_string())
                    .unwrap();
                match hv.store.tx_end(d0, tx, true) {
                    Ok(()) => {
                        expected += 1;
                        break;
                    }
                    Err(kite::xen::XenError::Again) => {
                        assert!(conflict, "spurious conflict");
                        continue;
                    }
                    Err(e) => panic!("unexpected {e}"),
                }
            }
            let v: u64 = hv
                .store
                .read(d0, None, "/counter")
                .unwrap()
                .parse()
                .unwrap();
            assert_eq!(v, expected);
        }
    }
}

/// The DES queue pops in nondecreasing time order for any schedule.
#[test]
fn event_queue_time_monotone() {
    let mut rng = Pcg::seeded(0xe4e);
    for _ in 0..64 {
        let n = rng.index(199) + 1;
        let times: Vec<u64> = (0..n).map(|_| rng.range_u64(0, 1_000_000)).collect();
        let mut q = kite::sim::EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.schedule_at(Nanos(*t), i);
        }
        let mut last = Nanos::ZERO;
        let mut popped = 0;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last);
            last = t;
            popped += 1;
        }
        assert_eq!(popped, times.len());
    }
}

// ---- batched grant-copy properties -------------------------------------

/// One netfront⇄netback pair assembled by hand (no scenario builder).
struct NetRig {
    hv: Hypervisor,
    dd: DomainId,
    nf: Netfront,
    nb: NetbackInstance,
}

fn net_rig(mode: CopyMode) -> NetRig {
    let mut hv = Hypervisor::new();
    hv.create_domain("Domain-0", DomainKind::Dom0, 8192, 4);
    let dd = hv.create_domain("netbackend", DomainKind::Driver, 1024, 1);
    let gu = hv.create_domain("guest", DomainKind::Guest, 5120, 22);
    let mut mgr = BackendManager::new(dd, DeviceKind::Vif);
    mgr.start(&mut hv).unwrap();
    let paths = DevicePaths::new(gu, dd, DeviceKind::Vif, 0);
    provision_device(&mut hv, &paths).unwrap();
    mgr.scan(&mut hv).unwrap();
    let nf = Netfront::connect(&mut hv, &paths, MacAddr::local(1)).unwrap();
    let ready = mgr.scan(&mut hv).unwrap();
    assert_eq!(ready.len(), 1);
    let mut nb = NetbackInstance::connect(&mut hv, &ready[0], kite_profile()).unwrap();
    nb.set_copy_mode(mode);
    NetRig { hv, dd, nf, nb }
}

#[derive(Clone, Debug)]
enum NetOp {
    /// Guest sends a frame of this length.
    Send(usize),
    /// The world queues a frame of this length for the guest.
    Enqueue(usize),
    /// Tx drain with this budget.
    Pusher(usize),
    /// Rx fill with this budget.
    SoftStart(usize),
    /// Guest reaps completions and reposts Rx buffers.
    GuestIrq,
}

/// Everything externally observable from one op, for equivalence checks.
#[derive(Debug, PartialEq, Eq)]
enum Observed {
    Sent(bool),
    Enqueued(bool),
    Tx {
        frames: Vec<Vec<u8>>,
        notify: bool,
        more: bool,
    },
    Rx {
        delivered: usize,
        notify: bool,
        more: bool,
    },
    Irq {
        received: Vec<Vec<u8>>,
    },
}

/// Applies one op sequence to a rig; returns the observation log plus the
/// accumulated virtual drain cost.
fn apply_net_ops(rig: &mut NetRig, ops: &[NetOp], payload_rng: &mut Pcg) -> (Vec<Observed>, Nanos) {
    let mut log = Vec::new();
    let mut drain_cost = Nanos::ZERO;
    for op in ops {
        match op {
            NetOp::Send(len) => {
                let frame = random_bytes(payload_rng, *len);
                let ok = rig.nf.send(&mut rig.hv, &frame, None).is_ok();
                log.push(Observed::Sent(ok));
            }
            NetOp::Enqueue(len) => {
                let frame = random_bytes(payload_rng, *len);
                log.push(Observed::Enqueued(rig.nb.enqueue_to_guest(frame)));
            }
            NetOp::Pusher(budget) => {
                let before = rig.hv.meter(rig.dd).count(HypercallKind::GntCopy);
                let batch = rig.nb.pusher_run(&mut rig.hv, 0, *budget).unwrap();
                let delta = rig.hv.meter(rig.dd).count(HypercallKind::GntCopy) - before;
                if rig.nb.copy_mode() == CopyMode::Batched {
                    assert!(delta <= 1, "one hypercall per Tx drain, saw {delta}");
                }
                drain_cost += batch.cost;
                log.push(Observed::Tx {
                    frames: batch.frames,
                    notify: batch.notify,
                    more: batch.more,
                });
            }
            NetOp::SoftStart(budget) => {
                let before = rig.hv.meter(rig.dd).count(HypercallKind::GntCopy);
                let batch = rig.nb.soft_start_run(&mut rig.hv, 0, *budget).unwrap();
                let delta = rig.hv.meter(rig.dd).count(HypercallKind::GntCopy) - before;
                if rig.nb.copy_mode() == CopyMode::Batched {
                    assert!(delta <= 1, "one hypercall per Rx fill, saw {delta}");
                }
                drain_cost += batch.cost;
                log.push(Observed::Rx {
                    delivered: batch.delivered,
                    notify: batch.notify,
                    more: batch.more,
                });
            }
            NetOp::GuestIrq => {
                rig.nf.on_irq(&mut rig.hv).unwrap();
                let mut received = Vec::new();
                while let Some(f) = rig.nf.recv() {
                    received.push(f);
                }
                log.push(Observed::Irq { received });
            }
        }
    }
    (log, drain_cost)
}

/// The batched drain is observably identical to the one-hypercall-per-op
/// path: same frames, same responses, same notify decisions, same
/// packet/byte/error stats — under random budgets, ring states and
/// workloads. Only the hypercall count (and hence cost) differs, and the
/// batched cost is never higher.
#[test]
fn netback_batched_matches_single_op() {
    for seed in 0..8u64 {
        let mut op_rng = Pcg::new(seed, 0xba7c4);
        let mut ops = Vec::new();
        for _ in 0..op_rng.index(120) + 30 {
            ops.push(match op_rng.index(8) {
                0..=2 => NetOp::Send(op_rng.index(1500) + 1),
                3 | 4 => NetOp::Enqueue(op_rng.index(1500) + 1),
                5 => NetOp::Pusher(op_rng.index(64) + 1),
                6 => NetOp::SoftStart(op_rng.index(64) + 1),
                _ => NetOp::GuestIrq,
            });
        }
        // Always drain at the end so both sides did real batch work.
        ops.push(NetOp::Pusher(256));
        ops.push(NetOp::SoftStart(256));
        ops.push(NetOp::GuestIrq);

        let mut batched = net_rig(CopyMode::Batched);
        let mut single = net_rig(CopyMode::SingleOp);
        let (log_b, cost_b) = apply_net_ops(&mut batched, &ops, &mut Pcg::new(seed, 0xf00d));
        let (log_s, cost_s) = apply_net_ops(&mut single, &ops, &mut Pcg::new(seed, 0xf00d));
        assert_eq!(log_b, log_s, "seed {seed}: observable behavior must match");

        let sb = batched.nb.stats();
        let ss = single.nb.stats();
        assert_eq!(
            (sb.tx_packets, sb.tx_bytes, sb.tx_errors),
            (ss.tx_packets, ss.tx_bytes, ss.tx_errors)
        );
        assert_eq!(
            (sb.rx_packets, sb.rx_bytes, sb.rx_dropped),
            (ss.rx_packets, ss.rx_bytes, ss.rx_dropped)
        );
        assert_eq!((sb.copy.ops, sb.copy.bytes), (ss.copy.ops, ss.copy.bytes));
        // The meter agrees with the driver's own accounting in both modes.
        assert_eq!(
            batched.hv.meter(batched.dd).count(HypercallKind::GntCopy),
            sb.copy.batches
        );
        assert_eq!(
            single.hv.meter(single.dd).count(HypercallKind::GntCopy),
            ss.copy.batches
        );
        // Batching strictly reduces hypercalls and never raises cost.
        assert!(sb.copy.batches <= ss.copy.batches);
        assert!(
            cost_b <= cost_s,
            "seed {seed}: batched {cost_b:?} vs {cost_s:?}"
        );
        if sb.copy.hypercalls_saved > 0 {
            assert!(cost_b < cost_s, "multi-op drains must be strictly cheaper");
        }
    }
}

/// A hand-rolled frontend whose rings the test controls directly — used
/// to feed netback requests a real netfront never produces.
struct RawFront {
    tx: FrontRing<NetifTxRequest, NetifTxResponse>,
    rx: FrontRing<NetifRxRequest, kite::xen::netif::NetifRxResponse>,
    tx_page: PageId,
    rx_page: PageId,
    buf_page: PageId,
    buf_gref: GrantRef,
}

fn raw_rig() -> (Hypervisor, DomainId, RawFront, NetbackInstance) {
    let mut hv = Hypervisor::new();
    hv.create_domain("Domain-0", DomainKind::Dom0, 8192, 4);
    let dd = hv.create_domain("netbackend", DomainKind::Driver, 1024, 1);
    let gu = hv.create_domain("guest", DomainKind::Guest, 5120, 22);
    let mut mgr = BackendManager::new(dd, DeviceKind::Vif);
    mgr.start(&mut hv).unwrap();
    let paths = DevicePaths::new(gu, dd, DeviceKind::Vif, 0);
    provision_device(&mut hv, &paths).unwrap();
    mgr.scan(&mut hv).unwrap();
    let tx_page = hv.alloc_page(gu).unwrap();
    let rx_page = hv.alloc_page(gu).unwrap();
    let tx = FrontRing::init(hv.mem.page_mut(tx_page).unwrap());
    let rx = FrontRing::init(hv.mem.page_mut(rx_page).unwrap());
    let tx_ref = hv.grant_access(gu, dd, tx_page, false).unwrap();
    let rx_ref = hv.grant_access(gu, dd, rx_page, false).unwrap();
    let buf_page = hv.alloc_page(gu).unwrap();
    let buf_gref = hv.grant_access(gu, dd, buf_page, false).unwrap();
    let (port, _) = hv.evtchn_alloc_unbound(gu, dd);
    let fe = paths.frontend();
    hv.store
        .write(
            gu,
            None,
            &format!("{fe}/tx-ring-ref"),
            &tx_ref.0.to_string(),
        )
        .unwrap();
    hv.store
        .write(
            gu,
            None,
            &format!("{fe}/rx-ring-ref"),
            &rx_ref.0.to_string(),
        )
        .unwrap();
    hv.store
        .write(
            gu,
            None,
            &format!("{fe}/event-channel"),
            &port.0.to_string(),
        )
        .unwrap();
    kite::xen::xenbus::switch_state(
        &mut hv.store,
        gu,
        &paths.frontend_state(),
        XenbusState::Initialised,
    )
    .unwrap();
    let ready = mgr.scan(&mut hv).unwrap();
    assert_eq!(ready.len(), 1);
    let nb = NetbackInstance::connect(&mut hv, &ready[0], kite_profile()).unwrap();
    let front = RawFront {
        tx,
        rx,
        tx_page,
        rx_page,
        buf_page,
        buf_gref,
    };
    (hv, dd, front, nb)
}

/// Malformed Tx requests — zero size, offset at/past the page end, spans
/// crossing the page — are rejected as errors without panicking (the
/// `PAGE_SIZE - offset` underflow) and without poisoning the rest of the
/// drain, which still completes in one hypercall.
#[test]
fn pusher_rejects_bad_geometry_without_underflow() {
    let (mut hv, dd, mut front, mut nb) = raw_rig();
    hv.mem.page_mut(front.buf_page).unwrap()[..64].copy_from_slice(&[7u8; 64]);
    let reqs = [
        // Valid: 64 bytes at offset 0.
        NetifTxRequest {
            gref: front.buf_gref,
            offset: 0,
            flags: 0,
            id: 0,
            size: 64,
        },
        // Zero-size.
        NetifTxRequest {
            gref: front.buf_gref,
            offset: 0,
            flags: 0,
            id: 1,
            size: 0,
        },
        // Offset beyond the page: 4096-5000 underflows a usize subtraction.
        NetifTxRequest {
            gref: front.buf_gref,
            offset: 5000,
            flags: 0,
            id: 2,
            size: 100,
        },
        // Offset exactly at the page end.
        NetifTxRequest {
            gref: front.buf_gref,
            offset: PAGE_SIZE as u16,
            flags: 0,
            id: 3,
            size: 1,
        },
        // Span crosses the page end.
        NetifTxRequest {
            gref: front.buf_gref,
            offset: 4000,
            flags: 0,
            id: 4,
            size: 200,
        },
        // Valid geometry, bad grant: fails in the copy, not validation.
        NetifTxRequest {
            gref: GrantRef(991_991),
            offset: 0,
            flags: 0,
            id: 5,
            size: 32,
        },
    ];
    for r in &reqs {
        let page = hv.mem.page_mut(front.tx_page).unwrap();
        front.tx.push_request(page, r).unwrap();
    }
    front
        .tx
        .push_requests(hv.mem.page_mut(front.tx_page).unwrap());

    let before = hv.meter(dd).count(HypercallKind::GntCopy);
    let batch = nb.pusher_run(&mut hv, 0, 16).unwrap();
    assert_eq!(batch.frames, vec![vec![7u8; 64]], "only the valid frame");
    assert_eq!(nb.stats().tx_errors, 5);
    assert_eq!(nb.stats().tx_packets, 1);
    assert_eq!(
        hv.meter(dd).count(HypercallKind::GntCopy) - before,
        1,
        "whole drain (valid + bad-grant ops) in one hypercall"
    );
    // Every request got a response, in ring order.
    let mut statuses = Vec::new();
    loop {
        let page = hv.mem.page(front.tx_page).unwrap();
        match front.tx.consume_response(page).unwrap() {
            Some(r) => statuses.push((r.id, r.status)),
            None => break,
        }
    }
    use kite::xen::netif::{NETIF_RSP_ERROR, NETIF_RSP_OKAY};
    assert_eq!(
        statuses,
        vec![
            (0, NETIF_RSP_OKAY),
            (1, NETIF_RSP_ERROR),
            (2, NETIF_RSP_ERROR),
            (3, NETIF_RSP_ERROR),
            (4, NETIF_RSP_ERROR),
            (5, NETIF_RSP_ERROR),
        ]
    );
}

/// A frame whose Rx copy fails (revoked/bogus grant) is dropped loudly:
/// counted in `rx_dropped`, answered with an error response, and the
/// backlog still drains — no silent loss, no stuck queue.
#[test]
fn soft_start_counts_dropped_frames() {
    let (mut hv, dd, mut front, mut nb) = raw_rig();
    assert!(nb.enqueue_to_guest(vec![1u8; 100]));
    assert!(nb.enqueue_to_guest(vec![2u8; 200]));
    assert!(nb.enqueue_to_guest(vec![3u8; 300]));
    let posts = [
        NetifRxRequest {
            id: 0,
            gref: GrantRef(881_881), // never granted: copy fails
        },
        NetifRxRequest {
            id: 1,
            gref: front.buf_gref,
        },
        NetifRxRequest {
            id: 2,
            gref: GrantRef(881_882),
        },
    ];
    for r in &posts {
        let page = hv.mem.page_mut(front.rx_page).unwrap();
        front.rx.push_request(page, r).unwrap();
    }
    front
        .rx
        .push_requests(hv.mem.page_mut(front.rx_page).unwrap());

    let before = hv.meter(dd).count(HypercallKind::GntCopy);
    let batch = nb.soft_start_run(&mut hv, 0, 16).unwrap();
    assert_eq!(batch.delivered, 1, "only the valid buffer");
    assert_eq!(nb.stats().rx_dropped, 2);
    assert_eq!(
        nb.rx_backlog(),
        0,
        "failed frames are consumed, not re-queued"
    );
    assert_eq!(hv.meter(dd).count(HypercallKind::GntCopy) - before, 1);
    // The good buffer holds frame #2's bytes (frames pair with posts in order).
    assert_eq!(
        &hv.mem.page(front.buf_page).unwrap()[..200],
        &[2u8; 200][..]
    );
}

/// The acceptance property stated in the issue: a multi-packet ring drain
/// issues exactly ONE grant-copy hypercall, in both directions.
#[test]
fn netback_drain_is_one_hypercall() {
    use kite::trace::EventKind;
    let mut rig = net_rig(CopyMode::Batched);
    rig.hv.trace.enable(1 << 12);
    for i in 0..20 {
        let frame = vec![i as u8; 100 + i * 7];
        rig.nf.send(&mut rig.hv, &frame, None).unwrap();
        rig.nb.enqueue_to_guest(frame);
    }
    let tx = rig.nb.pusher_run(&mut rig.hv, 0, 64).unwrap();
    assert_eq!(tx.frames.len(), 20);
    // Trace-level assertion: the whole 20-frame Tx drain was exactly ONE
    // gnttab_copy hypercall carrying all 20 ops, recorded as one drain.
    assert_eq!(rig.hv.trace.query().kind("gnttab_copy").count(), 1);
    let copy = rig.hv.trace.query().kind("gnttab_copy").first().unwrap();
    assert!(matches!(
        copy.kind,
        EventKind::GrantCopyBatch {
            ops: 20,
            ok_ops: 20,
            ..
        }
    ));
    let drain = rig.hv.trace.query().kind("ring_drain").first().unwrap();
    assert!(matches!(
        drain.kind,
        EventKind::RingDrain {
            queue: "netback_tx",
            consumed: 20,
            ..
        }
    ));

    let rx = rig.nb.soft_start_run(&mut rig.hv, 0, 64).unwrap();
    assert_eq!(rx.delivered, 20);
    assert_eq!(rig.hv.trace.query().kind("gnttab_copy").count(), 2);
    assert_eq!(
        rig.hv
            .trace
            .query()
            .kind("ring_drain")
            .filter(|e| matches!(
                e.kind,
                EventKind::RingDrain {
                    queue: "netback_rx",
                    ..
                }
            ))
            .count(),
        1
    );

    // An empty drain emits neither a copy hypercall nor a drain record.
    rig.nb.pusher_run(&mut rig.hv, 0, 64).unwrap();
    rig.nb.soft_start_run(&mut rig.hv, 0, 64).unwrap();
    assert_eq!(rig.hv.trace.query().kind("gnttab_copy").count(), 2);
    assert_eq!(rig.hv.trace.query().kind("ring_drain").count(), 2);

    let st = rig.nb.stats();
    assert_eq!(st.copy.batches, 2);
    assert_eq!(st.copy.ops, 40);
    assert_eq!(st.copy.hypercalls_saved, 38);
}

/// Blkback on the grant-copy data path: batched and single-op modes move
/// identical bytes with identical request accounting; batching strictly
/// reduces hypercalls and virtual time on a random mixed workload.
#[test]
fn blkback_batched_matches_single_op() {
    let tuning = BlkbackTuning {
        persistent_grants: false,
        persistent_cap: 0,
        ..BlkbackTuning::default()
    };
    let run = |mode: CopyMode, seed: u64| {
        let mut sys = kite::system::SystemConfig::new(BackendOs::Kite, seed)
            .tuning(tuning)
            .copy_mode(mode)
            .build_stor();
        let mut rng = Pcg::new(seed, 0xb1);
        type CompletionLog = Rc<RefCell<Vec<(u64, bool, Option<Vec<u8>>)>>>;
        let reads: CompletionLog = Rc::new(RefCell::new(Vec::new()));
        let sink = reads.clone();
        sys.set_handler(Box::new(move |_, done| {
            sink.borrow_mut()
                .push((done.tag, done.ok, done.data.clone()));
            Vec::new()
        }));
        let mut t = Nanos::from_micros(50);
        let mut extents: Vec<(u64, usize)> = Vec::new();
        for tag in 0..40u64 {
            let kind = match rng.index(10) {
                0 => IoKind::Flush,
                1..=6 => {
                    let sectors = rng.range_u64(1, 256);
                    let sector = rng.range_u64(0, 65_536) * 8;
                    let data = random_bytes(&mut rng, sectors as usize * 512);
                    extents.push((sector, data.len()));
                    IoKind::Write { sector, data }
                }
                _ => {
                    if let Some(&(sector, len)) = extents.last() {
                        IoKind::Read { sector, len }
                    } else {
                        IoKind::Flush
                    }
                }
            };
            sys.submit_at(t, IoOp { tag, kind });
            t += Nanos::from_micros(30);
        }
        sys.run_to_quiescence();
        // Completion *order* is timing-dependent (the two cost models
        // schedule differently); the data and outcomes must not be.
        let mut log = reads.borrow().clone();
        log.sort_by_key(|&(tag, _, _)| tag);
        (log, sys.blkback_stats(), sys.now())
    };
    for seed in 0..4u64 {
        let (log_b, st_b, now_b) = run(CopyMode::Batched, seed);
        let (log_s, st_s, now_s) = run(CopyMode::SingleOp, seed);
        assert_eq!(log_b, log_s, "seed {seed}: completions must match");
        assert_eq!(
            (
                st_b.requests,
                st_b.errors,
                st_b.read_bytes,
                st_b.write_bytes
            ),
            (
                st_s.requests,
                st_s.errors,
                st_s.read_bytes,
                st_s.write_bytes
            )
        );
        assert_eq!(
            (st_b.copy.ops, st_b.copy.bytes),
            (st_s.copy.ops, st_s.copy.bytes)
        );
        assert_eq!(st_b.grant_maps, 0, "copy path never maps data pages");
        assert!(
            st_b.copy.batches < st_s.copy.batches,
            "seed {seed}: batching must save hypercalls"
        );
        assert!(now_b < now_s, "seed {seed}: batched must finish sooner");
    }
}

/// Blkback issues one grant-copy hypercall per request's segment list
/// (plus one for the descriptor page of an indirect request).
#[test]
fn blkback_request_is_one_copy_batch() {
    let tuning = BlkbackTuning {
        persistent_grants: false,
        persistent_cap: 0,
        ..BlkbackTuning::default()
    };
    let mut sys = kite::system::SystemConfig::new(BackendOs::Kite, 3)
        .tuning(tuning)
        .build_stor();
    // 8 direct-sized writes: 16 KiB = 4 segments each, one batch apiece.
    let mut t = Nanos::from_micros(50);
    for i in 0..8u64 {
        sys.submit_at(
            t,
            IoOp {
                tag: i,
                kind: IoKind::Write {
                    sector: i * 64,
                    data: vec![0xab; 16 * 1024],
                },
            },
        );
        t += Nanos::from_micros(200);
    }
    sys.run_to_quiescence();
    let st = sys.blkback_stats();
    assert_eq!(st.requests, 8);
    assert_eq!(st.copy.batches, 8, "one hypercall per direct request");
    assert_eq!(st.copy.ops, 32);
    // One 128 KiB write: 32 segments via one indirect descriptor page —
    // one batch for the descriptor, one for the data.
    sys.submit_at(
        sys.now() + Nanos::from_micros(10),
        IoOp {
            tag: 100,
            kind: IoKind::Write {
                sector: 4096,
                data: vec![0xcd; 128 * 1024],
            },
        },
    );
    sys.run_to_quiescence();
    let st = sys.blkback_stats();
    assert_eq!(st.requests, 9);
    assert_eq!(st.copy.batches, 10, "descriptor batch + data batch");
    assert_eq!(st.copy.ops, 32 + 33);
    assert_eq!(st.errors, 0);
}

// ---- multi-queue properties --------------------------------------------

/// Toeplitz flow steering is a pure function of the flow tuple: stable
/// across calls, insensitive to payload bytes, always in range, and
/// pinned to the published RSS verification vector so the constant key
/// (and the hash itself) can never silently change.
#[test]
fn flow_steering_is_seed_stable_and_tuple_pure() {
    use kite::net::flow;
    // The Microsoft verification vector, pushed through real frame
    // encoding: src 66.9.149.187:2794 -> dst 161.142.100.80:1766.
    let src = "66.9.149.187".parse().unwrap();
    let dst = "161.142.100.80".parse().unwrap();
    let udp = UdpDatagram::new(2794, 1766, vec![0u8; 32]);
    let ip = Ipv4Packet::new(src, dst, IpProto::Udp, udp.encode(src, dst));
    let eth = EthernetFrame::new(
        MacAddr::local(2),
        MacAddr::local(1),
        EtherType::Ipv4,
        ip.encode(),
    );
    assert_eq!(flow::flow_hash(&eth.encode()), 0x51cc_c178);

    let mut rng = Pcg::seeded(0xf10e);
    for _ in 0..64 {
        let sp = rng.range_u64(1, 65535) as u16;
        let dp = rng.range_u64(1, 65535) as u16;
        let mk = |payload: Vec<u8>| {
            let src = "10.1.2.3".parse().unwrap();
            let dst = "10.4.5.6".parse().unwrap();
            let udp = UdpDatagram::new(sp, dp, payload);
            let ip = Ipv4Packet::new(src, dst, IpProto::Udp, udp.encode(src, dst));
            EthernetFrame::new(
                MacAddr::local(1),
                MacAddr::local(2),
                EtherType::Ipv4,
                ip.encode(),
            )
            .encode()
        };
        let a = mk(random_bytes(&mut rng, 200));
        let b = mk(random_bytes(&mut rng, 900));
        assert_eq!(flow::flow_hash(&a), flow::flow_hash(&a), "stable");
        assert_eq!(
            flow::flow_hash(&a),
            flow::flow_hash(&b),
            "hash is payload-independent"
        );
        assert_eq!(flow::steer(&a, 1), 0, "single queue takes everything");
        for n in [2u32, 4, 8] {
            let q = flow::steer(&a, n);
            assert!(q < n, "steer({n}) in range");
            assert_eq!(q, flow::steer(&b, n), "same flow, same queue");
        }
    }
}

/// Per-flow ordering survives multi-queue: for every queue count, each
/// flow's messages arrive at the client in submission order (flows hash
/// to one queue, and each queue is FIFO), with nothing dropped.
#[test]
fn per_flow_order_preserved_across_queue_counts() {
    use kite::system::addrs;
    use kite::xen::QueueMode;
    const FLOWS: u64 = 8;
    const MSGS: u64 = 12;
    for queues in [1u32, 2, 4, 8] {
        let mode = if queues == 1 {
            QueueMode::Single
        } else {
            QueueMode::Multi(queues)
        };
        let mut sys = kite::system::SystemConfig::new(BackendOs::Kite, 42)
            .queue_mode(mode)
            .build_net();
        let seen: Rc<RefCell<Vec<(u16, u8)>>> = Rc::new(RefCell::new(Vec::new()));
        let s2 = seen.clone();
        sys.set_client_app(Box::new(move |_, msg| {
            s2.borrow_mut().push((msg.src_port, msg.payload[0]));
            Vec::new()
        }));
        for i in 0..FLOWS * MSGS {
            let flow = i % FLOWS;
            let seq = (i / FLOWS) as u8;
            sys.send_udp_at(
                Nanos::from_micros(100 + 150 * i),
                kite::system::Side::Guest,
                addrs::CLIENT,
                9999,
                3000 + flow as u16,
                vec![seq; 400],
            );
        }
        sys.run_to_quiescence();
        let seen = seen.borrow();
        assert_eq!(
            seen.len() as u64,
            FLOWS * MSGS,
            "{queues} queues: every message arrives"
        );
        for flow in 0..FLOWS {
            let port = 3000 + flow as u16;
            let seqs: Vec<u8> = seen
                .iter()
                .filter(|(p, _)| *p == port)
                .map(|&(_, s)| s)
                .collect();
            let want: Vec<u8> = (0..MSGS as u8).collect();
            assert_eq!(seqs, want, "{queues} queues: flow {flow} in order");
        }
    }
}

/// `QueueMode::Multi(1)` is the single-queue path, not a one-entry
/// special case of the multi-queue one: same trajectory, byte-identical
/// trace export and metrics JSON as `QueueMode::Single`.
#[test]
fn multi_one_is_byte_equivalent_to_single() {
    use kite::system::{addrs, Side};
    use kite::xen::QueueMode;
    let run = |mode: QueueMode| {
        let mut sys = kite::system::SystemConfig::new(BackendOs::Kite, 77)
            .queue_mode(mode)
            .tracing(1 << 16)
            .build_net();
        for i in 0..60u64 {
            sys.send_udp_at(
                Nanos::from_millis(1 + 7 * i),
                Side::Guest,
                addrs::CLIENT,
                9999,
                1200 + (i % 5) as u16,
                vec![i as u8; 700],
            );
            sys.send_udp_at(
                Nanos::from_millis(3 + 7 * i),
                Side::Client,
                addrs::GUEST,
                7777,
                2200 + (i % 3) as u16,
                vec![i as u8; 300],
            );
        }
        sys.run_to_quiescence();
        assert_eq!(sys.hv.trace.dropped(), 0);
        let chrome = sys.hv.export_chrome_trace();
        let metrics = kite_trace::metrics::render_json(&[sys.metrics_snapshot("eq")]);
        (
            sys.now().as_nanos(),
            sys.events_processed(),
            chrome,
            metrics,
        )
    };
    let single = run(QueueMode::Single);
    let multi1 = run(QueueMode::Multi(1));
    assert_eq!(single.0, multi1.0, "same virtual end time");
    assert_eq!(single.1, multi1.1, "same event count");
    assert_eq!(single.2, multi1.2, "byte-identical chrome export");
    assert_eq!(single.3, multi1.3, "byte-identical metrics JSON");
}
