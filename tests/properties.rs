//! Property-based tests over the core data structures and protocols.

use proptest::prelude::*;

use kite::fs::{ExtentAllocator, Fs};
use kite::net::{
    ArpPacket, DhcpMessage, DhcpMessageType, EtherType, EthernetFrame, IcmpMessage, IpProto,
    Ipv4Packet, MacAddr, TcpSegment, UdpDatagram,
};
use kite::sim::Nanos;
use kite::xen::ring::{BackRing, FrontRing, RingEntry};
use kite::xen::{DomainKind, Hypervisor};

/// Toy ring entry.
#[derive(Clone, Debug, PartialEq, Eq)]
struct E(u64);
impl RingEntry for E {
    const SIZE: usize = 8;
    fn write_to(&self, buf: &mut [u8]) {
        buf.copy_from_slice(&self.0.to_le_bytes());
    }
    fn read_from(buf: &[u8]) -> Self {
        E(u64::from_le_bytes(buf[..8].try_into().unwrap()))
    }
}

proptest! {
    /// The shared-ring protocol never loses, duplicates or reorders
    /// entries under arbitrary interleavings of produce/consume steps.
    #[test]
    fn ring_fifo_under_arbitrary_interleaving(ops in proptest::collection::vec(0u8..4, 1..300)) {
        let mut page = vec![0u8; 4096];
        let mut front: FrontRing<E, E> = FrontRing::init(&mut page);
        let mut back: BackRing<E, E> = BackRing::attach();
        let mut next = 0u64;
        let mut expect_req = 0u64;
        let mut expect_rsp = 0u64;
        let mut served = std::collections::VecDeque::new();
        for op in ops {
            match op {
                0 => {
                    if !front.full() {
                        front.push_request(&mut page, &E(next)).unwrap();
                        next += 1;
                        front.push_requests(&mut page);
                    }
                }
                1 => {
                    if let Some(r) = back.consume_request(&page).unwrap() {
                        prop_assert_eq!(r.0, expect_req, "requests FIFO");
                        expect_req += 1;
                        served.push_back(r.0);
                    }
                }
                2 => {
                    if let Some(v) = served.front().copied() {
                        if back.free_responses() > 0
                            && back.push_response(&mut page, &E(v)).is_ok()
                        {
                            served.pop_front();
                            back.push_responses(&mut page);
                        }
                    }
                }
                _ => {
                    if let Some(r) = front.consume_response(&page).unwrap() {
                        prop_assert_eq!(r.0, expect_rsp, "responses FIFO");
                        expect_rsp += 1;
                    }
                }
            }
        }
    }

    /// Ethernet/IPv4/UDP stacking round-trips arbitrary payloads.
    #[test]
    fn packet_stack_roundtrip(payload in proptest::collection::vec(any::<u8>(), 0..1400),
                              sp in 1u16..65535, dp in 1u16..65535) {
        let src = "10.1.2.3".parse().unwrap();
        let dst = "10.4.5.6".parse().unwrap();
        let udp = UdpDatagram::new(sp, dp, payload.clone());
        let ip = Ipv4Packet::new(src, dst, IpProto::Udp, udp.encode(src, dst));
        let eth = EthernetFrame::new(MacAddr::local(1), MacAddr::local(2), EtherType::Ipv4, ip.encode());
        let bytes = eth.encode();

        let eth2 = EthernetFrame::decode(&bytes).unwrap();
        prop_assert_eq!(eth2.ethertype, EtherType::Ipv4);
        let ip2 = Ipv4Packet::decode(&eth2.payload).unwrap();
        prop_assert_eq!(ip2.src, src);
        let udp2 = UdpDatagram::decode(&ip2.payload, src, dst).unwrap();
        prop_assert_eq!(udp2.payload, payload);
        prop_assert_eq!((udp2.src_port, udp2.dst_port), (sp, dp));
    }

    /// Any single-bit corruption in an IPv4 header is detected.
    #[test]
    fn ipv4_header_bitflip_detected(bit in 0usize..(20 * 8)) {
        let ip = Ipv4Packet::new(
            "10.0.0.1".parse().unwrap(),
            "10.0.0.2".parse().unwrap(),
            IpProto::Tcp,
            vec![1, 2, 3],
        );
        let mut bytes = ip.encode();
        bytes[bit / 8] ^= 1 << (bit % 8);
        // Either the version check or the checksum must catch it.
        prop_assert!(Ipv4Packet::decode(&bytes).is_none() || bit / 8 >= 20);
    }

    /// TCP segments round-trip.
    #[test]
    fn tcp_roundtrip(payload in proptest::collection::vec(any::<u8>(), 0..1000),
                     seq in any::<u32>(), ack in any::<u32>(), win in any::<u16>()) {
        let src = "10.0.0.1".parse().unwrap();
        let dst = "10.0.0.2".parse().unwrap();
        let s = TcpSegment {
            src_port: 80,
            dst_port: 12345,
            seq,
            ack,
            flags: kite::net::tcp::flags::ACK,
            window: win,
            payload,
        };
        let bytes = s.encode(src, dst);
        prop_assert_eq!(TcpSegment::decode(&bytes, src, dst), Some(s));
    }

    /// ICMP echo round-trips.
    #[test]
    fn icmp_roundtrip(ident in any::<u16>(), seq in any::<u16>(),
                      payload in proptest::collection::vec(any::<u8>(), 0..256)) {
        let m = IcmpMessage::EchoRequest { ident, seq, payload };
        prop_assert_eq!(IcmpMessage::decode(&m.encode()), Some(m));
    }

    /// ARP round-trips.
    #[test]
    fn arp_roundtrip(a in any::<u32>(), b in any::<u32>()) {
        let p = ArpPacket::request(
            MacAddr::local(a),
            std::net::Ipv4Addr::from(a),
            std::net::Ipv4Addr::from(b),
        );
        prop_assert_eq!(ArpPacket::decode(&p.encode()), Some(p));
    }

    /// DHCP messages round-trip with arbitrary option combinations.
    #[test]
    fn dhcp_roundtrip(xid in any::<u32>(), mac in any::<u32>(),
                      req_ip in proptest::option::of(any::<u32>()),
                      lease in proptest::option::of(any::<u32>())) {
        let mut m = DhcpMessage::client(DhcpMessageType::Request, xid, MacAddr::local(mac));
        m.requested_ip = req_ip.map(std::net::Ipv4Addr::from);
        m.lease_secs = lease;
        prop_assert_eq!(DhcpMessage::decode(&m.encode()), Some(m));
    }

    /// The extent allocator conserves blocks under arbitrary churn.
    #[test]
    fn allocator_conserves_blocks(ops in proptest::collection::vec((any::<bool>(), 1u64..40), 1..200)) {
        let total = 2048;
        let mut a = ExtentAllocator::new(total);
        let mut held: Vec<Vec<kite::fs::Extent>> = Vec::new();
        for (free, n) in ops {
            if free && !held.is_empty() {
                for e in held.pop().unwrap() {
                    a.free_extent(e);
                }
            } else if let Some(e) = a.alloc(n) {
                prop_assert_eq!(e.iter().map(|x| x.len).sum::<u64>(), n);
                held.push(e);
            }
            let held_total: u64 = held.iter().flatten().map(|e| e.len).sum();
            prop_assert_eq!(a.free_blocks() + held_total, total);
        }
    }

    /// Allocated extents never overlap.
    #[test]
    fn allocator_never_overlaps(sizes in proptest::collection::vec(1u64..64, 1..60)) {
        let mut a = ExtentAllocator::new(4096);
        let mut used = std::collections::HashSet::new();
        for n in sizes {
            if let Some(extents) = a.alloc(n) {
                for e in extents {
                    for b in e.start..e.start + e.len {
                        prop_assert!(used.insert(b), "block {} double-allocated", b);
                    }
                }
            }
        }
    }

    /// FS write-then-read returns exactly the written range through the
    /// device-I/O plans (byte accounting, cache on or off).
    #[test]
    fn fs_read_covers_written_range(writes in proptest::collection::vec((0u64..64, 1usize..16384), 1..20)) {
        let mut fs = Fs::format(4096, 8);
        let ino = fs.create("f").unwrap();
        let mut size = 0u64;
        for (off_blocks, len) in writes {
            let off = off_blocks * 512;
            if fs.write(ino, off, len).is_ok() {
                size = size.max(off + len as u64);
            }
        }
        prop_assert_eq!(fs.size(ino).unwrap(), size);
        if size > 0 {
            fs.drop_caches();
            let plan = fs.read(ino, 0, size as usize).unwrap();
            let covered: usize =
                plan.device_ios.iter().map(|io| io.bytes).sum::<usize>() + plan.cached_bytes;
            prop_assert_eq!(covered, size as usize);
        }
    }

    /// Grant copy moves exactly the requested bytes regardless of offsets.
    #[test]
    fn grant_copy_exact(src_off in 0usize..4096, dst_off in 0usize..4096, len in 0usize..4096) {
        prop_assume!(src_off + len <= 4096 && dst_off + len <= 4096);
        let mut hv = Hypervisor::new();
        hv.create_domain("Domain-0", DomainKind::Dom0, 64, 1);
        let dd = hv.create_domain("dd", DomainKind::Driver, 64, 1);
        let gu = hv.create_domain("gu", DomainKind::Guest, 64, 1);
        let sp = hv.alloc_page(gu).unwrap();
        let dp = hv.alloc_page(dd).unwrap();
        for (i, b) in hv.mem.page_mut(sp).unwrap().iter_mut().enumerate() {
            *b = (i % 251) as u8;
        }
        let gref = hv.grant_access(gu, dd, sp, true).unwrap();
        hv.grant_copy(
            dd,
            kite::xen::CopySide::Grant { granter: gu, gref, offset: src_off },
            kite::xen::CopySide::Local { page: dp, offset: dst_off },
            len,
        ).unwrap();
        let dst = hv.mem.page(dp).unwrap();
        for i in 0..len {
            prop_assert_eq!(dst[dst_off + i], ((src_off + i) % 251) as u8);
        }
        // Bytes outside the window stay zero.
        for (i, &b) in dst.iter().enumerate() {
            if i < dst_off || i >= dst_off + len {
                prop_assert_eq!(b, 0);
            }
        }
    }

    /// Xenstore transactions are serializable: a conflicting commit fails,
    /// a retry applied after sees the latest value.
    #[test]
    fn xenstore_counter_increments_serially(interleave in proptest::collection::vec(any::<bool>(), 1..40)) {
        let mut hv = Hypervisor::new();
        let d0 = hv.create_domain("Domain-0", DomainKind::Dom0, 64, 1);
        hv.store.write(d0, None, "/counter", "0").unwrap();
        let mut expected = 0u64;
        for conflict in interleave {
            // The concurrent writer interferes only with the first
            // attempt; the retry then commits cleanly (as a real racing
            // writer eventually quiesces).
            let mut pending_conflict = conflict;
            loop {
                let tx = hv.store.tx_start(d0);
                let v: u64 = hv.store.read(d0, Some(tx), "/counter").unwrap().parse().unwrap();
                if pending_conflict {
                    hv.store.write(d0, None, "/counter", &(v + 1).to_string()).unwrap();
                    expected += 1;
                    pending_conflict = false;
                }
                hv.store.write(d0, Some(tx), "/counter", &(v + 1).to_string()).unwrap();
                match hv.store.tx_end(d0, tx, true) {
                    Ok(()) => {
                        expected += 1;
                        break;
                    }
                    Err(kite::xen::XenError::Again) => {
                        prop_assert!(conflict, "spurious conflict");
                        continue;
                    }
                    Err(e) => prop_assert!(false, "unexpected {e}"),
                }
            }
            let v: u64 = hv.store.read(d0, None, "/counter").unwrap().parse().unwrap();
            prop_assert_eq!(v, expected);
        }
    }

    /// The DES queue pops in nondecreasing time order for any schedule.
    #[test]
    fn event_queue_time_monotone(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = kite::sim::EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.schedule_at(Nanos(*t), i);
        }
        let mut last = Nanos::ZERO;
        let mut n = 0;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
            n += 1;
        }
        prop_assert_eq!(n, times.len());
    }
}
