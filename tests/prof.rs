//! Profiler quarantine and coverage at the system level.
//!
//! `kite-prof` measures wall-clock time, which is nondeterministic by
//! nature — so the one property the rest of the repo depends on is that
//! profiling *observes without perturbing*: a profiled run and an
//! unprofiled run of the same seed must produce byte-identical
//! virtual-time results. On top of that, the instrumentation has to
//! actually cover the hot paths the report claims to explain.

use kite::prof::{self, Phase};
use kite::sim::Nanos;
use kite::system::{addrs, BackendOs, NetSystem, Reply, Side, SystemConfig};

fn echo_run(profiled: bool) -> NetSystem {
    let mut cfg = SystemConfig::new(BackendOs::Kite, 42).queues(4);
    if profiled {
        cfg = cfg.profiling(true);
    }
    let mut sys = cfg.build_net();
    sys.set_guest_app(Box::new(|_, msg| {
        vec![Reply {
            dst_ip: msg.src_ip,
            dst_port: msg.src_port,
            src_port: msg.dst_port,
            payload: msg.payload.clone(),
            cost: Nanos::from_micros(1),
        }]
    }));
    for i in 0..256u64 {
        sys.send_udp_at(
            Nanos::from_micros(10 + 20 * (i / 64)),
            Side::Client,
            addrs::GUEST,
            7777,
            1200 + (i % 64) as u16,
            vec![i as u8; 1400],
        );
    }
    sys.run_to_quiescence();
    sys
}

#[test]
fn profiled_run_covers_the_instrumented_hot_paths() {
    let sys = echo_run(true);
    let report = prof::report();
    prof::disable();
    prof::reset();
    drop(sys);
    let calls = |p: Phase| {
        report
            .rows
            .iter()
            .find(|r| r.phase == p)
            .map_or(0, |r| r.calls)
    };
    // Scheduler, dispatch, netback, grant-copy: each must have fired.
    for p in [
        Phase::SchedPush,
        Phase::SchedPop,
        Phase::DispatchWire,
        Phase::DispatchIrq,
        Phase::NetbackTxDrain,
        Phase::GrantCopy,
    ] {
        assert!(calls(p) > 0, "phase {} recorded no calls", p.name());
    }
    // Every push is eventually popped; pop() also spans the final
    // empty poll of run_to_quiescence, so pops can exceed pushes.
    assert!(calls(Phase::SchedPop) >= calls(Phase::SchedPush));
    assert_eq!(report.truncated, 0, "echo nesting fits the span stack");
}

#[test]
fn profiling_does_not_perturb_virtual_time() {
    let plain = echo_run(false);
    let profiled = echo_run(true);
    prof::disable();
    prof::reset();
    assert_eq!(plain.now(), profiled.now());
    assert_eq!(plain.events_processed(), profiled.events_processed());
    let render = |sys: &NetSystem| {
        kite::trace::metrics::render_json(&[sys.metrics_snapshot("prof/quarantine")])
    };
    assert_eq!(
        render(&plain),
        render(&profiled),
        "profiling must observe, never perturb"
    );
}

#[test]
fn collapsed_stacks_have_flamegraph_shape() {
    let sys = echo_run(true);
    let report = prof::report();
    prof::disable();
    prof::reset();
    drop(sys);
    let collapsed = report.render_collapsed();
    assert!(!collapsed.is_empty());
    for line in collapsed.lines() {
        let (path, count) = line.rsplit_once(' ').expect("`path count` shape");
        assert!(path.starts_with("kite"), "bad frame root in {line:?}");
        assert!(
            path.split(';').skip(1).all(|f| !f.is_empty()
                && f.chars()
                    .all(|c| c.is_ascii_lowercase() || c == '_' || c.is_ascii_digit())),
            "bad frame name in {line:?}"
        );
        assert!(count.parse::<u64>().is_ok(), "bad count in {line:?}");
    }
    // The signature nesting of the echo scenario: drains run inside IRQ
    // dispatch and grant copies inside the drain.
    assert!(
        collapsed
            .lines()
            .any(|l| l.starts_with("kite;dispatch_irq;netback_tx_drain;grant_copy ")),
        "expected nested path missing:\n{collapsed}"
    );
}
