//! Driver-domain crash/restart recovery, end to end.
//!
//! These tests kill the driver domain mid-workload (via a seeded
//! [`FaultPlan`]), let the toolstack restart it through the OS boot
//! model, and assert the frontends reconnect and that no acknowledged
//! request is lost — the paper's core availability claim (§4.4: a
//! rumprun driver domain restarts in seconds, transparently to guests).

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use kite_sim::Nanos;
use kite_system::{addrs, BackendOs, IoKind, IoOp, NetSystem, Side, StorSystem};
use kite_xen::FaultPlan;

/// Kill the driver domain mid-UDP-stream. Every frame the guest's send
/// path accepted (i.e. did not report as dropped) must reach the client
/// at least once — the unacknowledged tail is replayed through the
/// replacement device.
#[test]
fn net_driver_crash_mid_udp_stream_recovers_without_acked_loss() {
    let mut downtimes = Vec::new();
    for os in BackendOs::both() {
        let mut sys = NetSystem::new(os, 42);
        sys.enable_tracing(1 << 16);
        let received: Rc<RefCell<u64>> = Rc::new(RefCell::new(0));
        let r2 = received.clone();
        sys.set_client_app(Box::new(move |_, msg| {
            assert_eq!(msg.payload.len(), 1400);
            *r2.borrow_mut() += 1;
            Vec::new()
        }));
        const MSGS: u64 = 200;
        for i in 0..MSGS {
            // 100 s of steady traffic: spans the outage even for the
            // Linux driver domain's ~75 s boot.
            sys.send_udp_at(
                Nanos::from_millis(1 + 500 * i),
                Side::Guest,
                addrs::CLIENT,
                9999,
                1234,
                vec![i as u8; 1400],
            );
        }
        let kill = Nanos::from_secs(10);
        sys.inject_faults(FaultPlan::seeded(7).with_kill_at(kill));
        // The stream is underway, then the backend dies...
        sys.run_until(kill + Nanos::from_millis(1));
        assert!(
            !sys.backend_alive(),
            "{}: backend dead after kill",
            os.name()
        );
        assert_eq!(sys.recovery.crashes, 1);
        // ...and the replacement domain brings service back.
        sys.run_to_quiescence();
        assert!(sys.backend_alive(), "{}: backend back up", os.name());
        assert_eq!(sys.recovery.reconnects, 1, "{}", os.name());
        let got = *received.borrow();
        assert!(
            got >= MSGS - sys.guest_tx_dropped(),
            "{}: {} delivered of {} accepted — acked frames lost",
            os.name(),
            got,
            MSGS - sys.guest_tx_dropped()
        );
        let down = sys.recovery.downtime;
        assert!(down > Nanos::ZERO, "{}: outage has extent", os.name());
        let cfb = sys
            .recovery
            .crash_to_first_byte()
            .expect("traffic resumed after the crash");
        assert!(
            cfb >= down,
            "{}: first byte ({cfb:?}) can't precede reconnect ({down:?})",
            os.name()
        );
        // Trace-level recovery story: the milestones appear exactly once,
        // in causal order, and the outage window is silent — not a single
        // evtchn notify between the kill and the reconnect.
        assert_eq!(sys.hv.trace.dropped(), 0, "{}: ring overflow", os.name());
        let seq_of = |what: &str| {
            sys.hv
                .trace
                .query()
                .milestone(what)
                .unwrap_or_else(|| panic!("{}: milestone {what:?} missing", os.name()))
                .seq
        };
        let (m_kill, m_detect, m_reboot, m_reconnect, m_first) = (
            seq_of("kill"),
            seq_of("detect"),
            seq_of("reboot"),
            seq_of("reconnect"),
            seq_of("first_byte"),
        );
        assert!(
            m_kill < m_detect && m_detect < m_reboot && m_reboot < m_reconnect,
            "{}: recovery milestones out of order",
            os.name()
        );
        assert!(
            m_reconnect < m_first,
            "{}: first byte before reconnect",
            os.name()
        );
        assert_eq!(
            sys.hv
                .trace
                .query()
                .seq_between(m_kill, m_reconnect)
                .kind("notify")
                .count(),
            0,
            "{}: notifies during the outage",
            os.name()
        );
        let span = sys
            .hv
            .trace
            .query()
            .span_between("kill", "first_byte")
            .expect("span");
        assert_eq!(
            span,
            cfb,
            "{}: trace span must equal the stats cfb",
            os.name()
        );
        downtimes.push((os, down));
    }
    // Paper Fig 10: the unikernel driver domain recovers much faster.
    assert!(
        downtimes[1].1 < downtimes[0].1,
        "kite downtime {:?} < linux downtime {:?}",
        downtimes[1].1,
        downtimes[0].1
    );
}

/// Kill the driver domain mid-write-stream. Every write whose completion
/// the workload saw (`done.ok`) — and every write still queued or in
/// flight at the crash — must land on the disk: reads through the
/// replacement backend verify the bytes.
#[test]
fn stor_driver_crash_mid_write_stream_loses_no_acked_io() {
    for os in BackendOs::both() {
        let mut sys = StorSystem::new(os, 42);
        const WRITES: u64 = 50;
        const LEN: usize = 16 * 1024;
        let payload = |i: u64| vec![(i + 1) as u8; LEN];
        sys.set_handler(Box::new(|_, done| {
            assert!(done.ok, "write {} failed", done.tag);
            Vec::new()
        }));
        for i in 0..WRITES {
            sys.submit_at(
                Nanos::from_millis(1 + 300 * i),
                IoOp {
                    tag: i,
                    kind: IoKind::Write {
                        sector: 128 * i,
                        data: payload(i),
                    },
                },
            );
        }
        // Kill 1 ms after write #6 submits: its ~2.8 ms device service
        // time guarantees the crash catches it in flight.
        let kill = Nanos::from_millis(1 + 300 * 6 + 1);
        sys.inject_faults(FaultPlan::seeded(9).with_kill_at(kill));
        sys.run_to_quiescence();
        assert!(sys.backend_alive(), "{}: backend back up", os.name());
        assert_eq!(sys.recovery.crashes, 1, "{}", os.name());
        assert_eq!(sys.recovery.reconnects, 1, "{}", os.name());
        assert!(
            sys.recovery.retried_ops > 0,
            "{}: the crash caught requests in flight",
            os.name()
        );
        assert_eq!(
            sys.metrics.ios,
            WRITES,
            "{}: every write completed",
            os.name()
        );
        assert_eq!(sys.outstanding(), 0, "{}", os.name());

        // Read everything back through the replacement backend.
        let reads: Rc<RefCell<HashMap<u64, Vec<u8>>>> = Rc::new(RefCell::new(HashMap::new()));
        let r2 = reads.clone();
        sys.set_handler(Box::new(move |_, done| {
            assert!(done.ok);
            if done.tag >= 1000 {
                r2.borrow_mut()
                    .insert(done.tag - 1000, done.data.clone().expect("read data"));
            }
            Vec::new()
        }));
        for i in 0..WRITES {
            sys.submit_at(
                sys.now() + Nanos::from_millis(1 + i),
                IoOp {
                    tag: 1000 + i,
                    kind: IoKind::Read {
                        sector: 128 * i,
                        len: LEN,
                    },
                },
            );
        }
        sys.run_to_quiescence();
        let reads = reads.borrow();
        for i in 0..WRITES {
            assert_eq!(
                reads.get(&i).map(Vec::as_slice),
                Some(payload(i).as_slice()),
                "{}: write {i} survived the crash",
                os.name()
            );
        }
    }
}

/// The crash/restart trajectory is part of the deterministic simulation:
/// the same seed replays the same recovery, byte for byte.
#[test]
fn recovery_is_deterministic_same_seed() {
    let run = |seed: u64| {
        let mut sys = NetSystem::new(BackendOs::Kite, seed);
        let received: Rc<RefCell<u64>> = Rc::new(RefCell::new(0));
        let r2 = received.clone();
        sys.set_client_app(Box::new(move |_, _| {
            *r2.borrow_mut() += 1;
            Vec::new()
        }));
        for i in 0..100u64 {
            sys.send_udp_at(
                Nanos::from_millis(1 + 200 * i),
                Side::Guest,
                addrs::CLIENT,
                9999,
                1234,
                vec![i as u8; 600],
            );
        }
        sys.inject_faults(FaultPlan::seeded(3).with_kill_at(Nanos::from_secs(5)));
        sys.run_to_quiescence();
        let got = *received.borrow();
        (
            sys.now().as_nanos(),
            sys.events_processed(),
            sys.recovery.downtime.as_nanos(),
            got,
        )
    };
    assert_eq!(run(555), run(555), "same seed, same recovery trajectory");
}

/// Two same-seed traced runs must export byte-identical Chrome-trace
/// JSON and byte-identical metrics JSON — virtual timestamps only, no
/// wall clock anywhere in the pipeline.
#[test]
fn trace_export_is_byte_identical_across_same_seed_runs() {
    let run = |seed: u64| {
        let mut sys = NetSystem::new(BackendOs::Kite, seed);
        sys.enable_tracing(1 << 16);
        for i in 0..50u64 {
            sys.send_udp_at(
                Nanos::from_millis(1 + 200 * i),
                Side::Guest,
                addrs::CLIENT,
                9999,
                1234,
                vec![i as u8; 600],
            );
        }
        sys.inject_faults(FaultPlan::seeded(3).with_kill_at(Nanos::from_secs(2)));
        sys.run_to_quiescence();
        assert_eq!(sys.hv.trace.dropped(), 0);
        let chrome = sys.hv.export_chrome_trace();
        let metrics = kite_trace::metrics::render_json(&[sys.metrics_snapshot("det")]);
        (chrome, metrics)
    };
    let (c1, m1) = run(909);
    let (c2, m2) = run(909);
    assert_eq!(c1, c2, "chrome export must be byte-identical");
    assert_eq!(m1, m2, "metrics export must be byte-identical");
    kite_trace::chrome::validate(&c1).expect("export validates");
}

/// Kill or hang a 4-queue driver domain mid-workload: the replacement
/// comes back with all four queues negotiated and connected, every
/// accepted frame still reaches the client at least once, and the
/// per-flow streams stay in order through the replay.
#[test]
fn multi_queue_driver_recovers_all_queues_without_acked_loss() {
    use kite_xen::QueueMode;
    for hang in [false, true] {
        let mut sys = kite_system::SystemConfig::new(BackendOs::Kite, 42)
            .queue_mode(QueueMode::Multi(4))
            .build_net();
        assert_eq!(sys.queue_count(), 4, "all queues negotiated at boot");
        let seen: Rc<RefCell<Vec<(u16, u8)>>> = Rc::new(RefCell::new(Vec::new()));
        let s2 = seen.clone();
        sys.set_client_app(Box::new(move |_, msg| {
            s2.borrow_mut().push((msg.src_port, msg.payload[0]));
            Vec::new()
        }));
        const FLOWS: u64 = 8;
        const MSGS: u64 = 96;
        for i in 0..MSGS {
            // ~24 s of traffic over 8 flows: spans the kite (~7 s) outage.
            sys.send_udp_at(
                Nanos::from_millis(1 + 250 * i),
                Side::Guest,
                addrs::CLIENT,
                9999,
                3000 + (i % FLOWS) as u16,
                vec![(i / FLOWS) as u8; 1000],
            );
        }
        let plan = FaultPlan::seeded(7);
        let at = Nanos::from_secs(2);
        sys.inject_faults(if hang {
            plan.with_hang_at(at)
        } else {
            plan.with_kill_at(at)
        });
        sys.run_to_quiescence();
        assert!(sys.backend_alive(), "hang={hang}: backend back up");
        assert_eq!(sys.recovery.reconnects, 1, "hang={hang}");
        assert_eq!(
            sys.queue_count(),
            4,
            "hang={hang}: replacement renegotiated every queue"
        );
        let seen = seen.borrow();
        assert!(
            seen.len() as u64 >= MSGS - sys.guest_tx_dropped(),
            "hang={hang}: {} delivered of {} accepted — acked frames lost",
            seen.len(),
            MSGS - sys.guest_tx_dropped()
        );
        // Replay may duplicate but never reorders within a flow.
        for flow in 0..FLOWS {
            let port = 3000 + flow as u16;
            let seqs: Vec<u8> = seen
                .iter()
                .filter(|(p, _)| *p == port)
                .map(|&(_, s)| s)
                .collect();
            let mut dedup = seqs.clone();
            dedup.dedup();
            let strictly_sorted = dedup.windows(2).all(|w| w[0] < w[1]);
            assert!(
                strictly_sorted,
                "hang={hang}: flow {flow} reordered: {seqs:?}"
            );
        }
    }
}
