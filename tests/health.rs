//! Active health monitoring, end to end.
//!
//! The recovery tests in `tests/recovery.rs` use the oracle detector —
//! the fault injector tells the toolstack the instant a domain dies.
//! These tests flip both systems to [`DetectionMode::Watchdog`] and
//! prove the heartbeat/stall monitor *notices* failures on its own:
//! kills (heartbeats stop) and hangs (heartbeats continue but rings
//! stall) on both the net and the block path, with a detection latency
//! that is strictly positive, bounded by the probe schedule, and
//! deterministic per seed. The `kitetop` renderer rides the same
//! virtual-time guarantees, so its output must be byte-identical across
//! same-seed runs.

use std::cell::RefCell;
use std::rc::Rc;

use kite_health::{render_top, HealthState, MonitorConfig, SloConfig};
use kite_sim::Nanos;
use kite_system::{
    addrs, BackendOs, DetectionMode, IoKind, IoOp, NetSystem, Side, StorSystem, SystemConfig,
};
use kite_xen::FaultPlan;

const MSGS: u64 = 120;

/// A watchdog-mode net system with 30 s of steady guest→client UDP
/// traffic at 4 msg/s — fast enough that the tx ring always has pending
/// requests between two 500 ms probes, which the stall detector needs.
fn net_watchdog(os: BackendOs, seed: u64) -> (NetSystem, Rc<RefCell<u64>>) {
    let mut sys = NetSystem::new(os, seed);
    sys.enable_tracing(1 << 16);
    sys.enable_watchdog(MonitorConfig::default());
    let received: Rc<RefCell<u64>> = Rc::new(RefCell::new(0));
    let r2 = received.clone();
    sys.set_client_app(Box::new(move |_, _| {
        *r2.borrow_mut() += 1;
        Vec::new()
    }));
    for i in 0..MSGS {
        sys.send_udp_at(
            Nanos::from_millis(1 + 250 * i),
            Side::Guest,
            addrs::CLIENT,
            9999,
            1234,
            vec![i as u8; 1400],
        );
    }
    (sys, received)
}

/// The paper-facing guarantee: with no oracle, a killed driver domain is
/// still detected (via missed heartbeats), recovered, and no
/// acknowledged frame is lost — and the detection latency is positive
/// yet bounded by `probe_interval × (miss_threshold + 1)`.
#[test]
fn net_watchdog_detects_kill_within_bound() {
    for os in BackendOs::both() {
        let (mut sys, received) = net_watchdog(os, 42);
        let kill = Nanos::from_secs(2);
        sys.inject_faults(FaultPlan::seeded(7).with_kill_at(kill));
        sys.run_to_quiescence();
        assert!(sys.backend_alive(), "{}: backend back up", os.name());
        assert_eq!(sys.recovery.crashes, 1, "{}", os.name());
        assert_eq!(sys.recovery.hangs, 0, "{}", os.name());
        assert_eq!(sys.recovery.reconnects, 1, "{}", os.name());
        let got = *received.borrow();
        assert!(
            got >= MSGS - sys.guest_tx_dropped(),
            "{}: acked frames lost",
            os.name()
        );
        let span = sys
            .hv
            .trace
            .query()
            .span_between("kill", "detect")
            .expect("kill and detect milestones present");
        assert!(span > Nanos::ZERO, "{}: detection takes time", os.name());
        assert!(
            span <= MonitorConfig::default().detect_bound(),
            "{}: detection latency {span:?} exceeds the probe-schedule bound",
            os.name()
        );
        assert_eq!(
            sys.recovery.detect_latency(),
            Some(span),
            "{}: stats and trace must agree on the detection latency",
            os.name()
        );
    }
}

/// A hung (livelocked) driver domain keeps heartbeating, so only the
/// ring-stall heuristic can catch it: pending requests with a frozen
/// consumer watermark across consecutive probes.
#[test]
fn net_watchdog_detects_hang_via_ring_stall() {
    for os in BackendOs::both() {
        let (mut sys, received) = net_watchdog(os, 42);
        let hang = Nanos::from_secs(2);
        sys.inject_faults(FaultPlan::seeded(7).with_hang_at(hang));
        sys.run_to_quiescence();
        assert!(sys.backend_alive(), "{}: backend back up", os.name());
        assert_eq!(sys.recovery.hangs, 1, "{}", os.name());
        assert_eq!(sys.recovery.crashes, 0, "{}", os.name());
        assert_eq!(sys.recovery.reconnects, 1, "{}", os.name());
        let got = *received.borrow();
        assert!(
            got >= MSGS - sys.guest_tx_dropped(),
            "{}: acked frames lost",
            os.name()
        );
        assert!(
            sys.hv.trace.query().milestone("kill").is_none(),
            "{}: a hang is not a kill",
            os.name()
        );
        let span = sys
            .hv
            .trace
            .query()
            .span_between("hang", "detect")
            .expect("hang and detect milestones present");
        assert!(span > Nanos::ZERO, "{}", os.name());
        assert!(
            span <= MonitorConfig::default().detect_bound(),
            "{}: stall detection latency {span:?} out of bound",
            os.name()
        );
        assert_eq!(sys.recovery.detect_latency(), Some(span), "{}", os.name());
    }
}

/// Same contract on the block path: kills and hangs mid-write-stream are
/// detected by the watchdog, every submitted write still completes, and
/// nothing is left outstanding.
#[test]
fn stor_watchdog_detects_kill_and_hang() {
    for os in BackendOs::both() {
        for hang in [false, true] {
            let mut sys = StorSystem::new(os, 42);
            sys.enable_tracing(1 << 16);
            sys.enable_watchdog(MonitorConfig::default());
            const WRITES: u64 = 50;
            sys.set_handler(Box::new(|_, done| {
                assert!(done.ok, "write {} failed", done.tag);
                Vec::new()
            }));
            for i in 0..WRITES {
                sys.submit_at(
                    Nanos::from_millis(1 + 300 * i),
                    IoOp {
                        tag: i,
                        kind: IoKind::Write {
                            sector: 128 * i,
                            data: vec![(i + 1) as u8; 16 * 1024],
                        },
                    },
                );
            }
            let fault = Nanos::from_millis(2_000);
            let plan = if hang {
                FaultPlan::seeded(9).with_hang_at(fault)
            } else {
                FaultPlan::seeded(9).with_kill_at(fault)
            };
            sys.inject_faults(plan);
            sys.run_to_quiescence();
            let label = if hang { "hang" } else { "kill" };
            assert!(sys.backend_alive(), "{}/{label}", os.name());
            assert_eq!(sys.recovery.reconnects, 1, "{}/{label}", os.name());
            assert_eq!(
                (sys.recovery.crashes, sys.recovery.hangs),
                if hang { (0, 1) } else { (1, 0) },
                "{}/{label}",
                os.name()
            );
            assert_eq!(
                sys.metrics.ios,
                WRITES,
                "{}/{label}: all writes done",
                os.name()
            );
            assert_eq!(sys.outstanding(), 0, "{}/{label}", os.name());
            let span = sys
                .hv
                .trace
                .query()
                .span_between(label, "detect")
                .expect("fault and detect milestones present");
            assert!(span > Nanos::ZERO, "{}/{label}", os.name());
            assert!(
                span <= MonitorConfig::default().detect_bound(),
                "{}/{label}: detection latency {span:?} out of bound",
                os.name()
            );
            assert_eq!(
                sys.recovery.detect_latency(),
                Some(span),
                "{}/{label}",
                os.name()
            );
        }
    }
}

/// The oracle-vs-watchdog ablation contract: the oracle "detects" at the
/// kill instant (zero latency by construction), while the watchdog's
/// `detect` milestone must never coincide with the kill timestamp.
#[test]
fn oracle_detects_instantly_watchdog_never_does() {
    let run = |mode: DetectionMode| {
        let (mut sys, _received) = net_watchdog(BackendOs::Kite, 42);
        if mode == DetectionMode::Oracle {
            // `net_watchdog` enabled the watchdog; build the oracle run
            // from scratch instead so both modes share the workload.
            let fresh = NetSystem::new(BackendOs::Kite, 42);
            sys = fresh;
            sys.enable_tracing(1 << 16);
            for i in 0..MSGS {
                sys.send_udp_at(
                    Nanos::from_millis(1 + 250 * i),
                    Side::Guest,
                    addrs::CLIENT,
                    9999,
                    1234,
                    vec![i as u8; 1400],
                );
            }
        }
        sys.inject_faults(FaultPlan::seeded(7).with_kill_at(Nanos::from_secs(2)));
        sys.run_to_quiescence();
        (
            sys.hv.trace.query().span_between("kill", "detect"),
            sys.recovery.detect_latency(),
        )
    };
    let (oracle_span, oracle_lat) = run(DetectionMode::Oracle);
    assert_eq!(oracle_span, Some(Nanos::ZERO), "oracle detects for free");
    assert_eq!(oracle_lat, Some(Nanos::ZERO));
    let (wd_span, wd_lat) = run(DetectionMode::Watchdog);
    assert!(
        wd_span.unwrap() > Nanos::ZERO,
        "watchdog detect must trail the kill"
    );
    assert_eq!(wd_span, wd_lat);
}

/// Watchdog-driven recovery is part of the deterministic simulation:
/// same seed, same probes, same detection instant, same trajectory —
/// for kills and for hangs.
#[test]
fn watchdog_recovery_is_deterministic_same_seed() {
    for hang in [false, true] {
        let run = |seed: u64| {
            let (mut sys, received) = net_watchdog(BackendOs::Kite, seed);
            let fault = Nanos::from_secs(2);
            let plan = if hang {
                FaultPlan::seeded(3).with_hang_at(fault)
            } else {
                FaultPlan::seeded(3).with_kill_at(fault)
            };
            sys.inject_faults(plan);
            sys.run_to_quiescence();
            let got = *received.borrow();
            (
                sys.now().as_nanos(),
                sys.events_processed(),
                sys.recovery.detect_latency(),
                sys.recovery.downtime.as_nanos(),
                got,
            )
        };
        assert_eq!(run(555), run(555), "hang={hang}: same seed, same detection");
    }
}

/// `kitetop` renders from virtual-time state only: two same-seed runs
/// snapshotted at the same virtual instants produce byte-identical text.
#[test]
fn kitetop_output_is_byte_identical_same_seed() {
    let run = |seed: u64| {
        let (mut sys, _received) = net_watchdog(BackendOs::Kite, seed);
        sys.inject_faults(FaultPlan::seeded(11).with_kill_at(Nanos::from_secs(2)));
        let mut out = String::new();
        for stop in [Nanos::from_secs(1), Nanos::from_millis(3_200)] {
            sys.run_until(stop);
            out.push_str(&render_top(&sys.top_snapshot()));
        }
        sys.run_to_quiescence();
        out.push_str(&render_top(&sys.top_snapshot()));
        out
    };
    let a = run(909);
    let b = run(909);
    assert_eq!(a, b, "kitetop output must be byte-identical");
    // The three snapshots walk the health state machine.
    assert!(a.contains("healthy"), "steady state renders healthy");
    assert!(a.contains("suspect("), "mid-detection renders suspect(k)");
}

/// A breached latency SLO marks the backend suspect — observability
/// without triggering recovery (the backend is slow, not dead).
#[test]
fn slo_breach_marks_backend_suspect() {
    let mut sys = NetSystem::new(BackendOs::Kite, 42);
    sys.enable_tracing(1 << 16);
    sys.enable_watchdog(MonitorConfig::default());
    // Any measured RTT busts a 1 ns p99 budget.
    sys.set_slo(SloConfig {
        p99: Some(Nanos(1)),
        min_samples: 1,
        ..SloConfig::default()
    });
    for i in 0..8u64 {
        sys.ping_at(Nanos::from_millis(1 + 10 * i), i as u16);
    }
    // Past the first probe (500 ms): the monitor has seen the breach.
    sys.run_to_quiescence();
    assert_eq!(
        sys.health(),
        Some(HealthState::Suspect { missed: 0 }),
        "breached SLO must render the backend suspect"
    );
    assert!(
        sys.backend_alive(),
        "an SLO breach alone must not trigger recovery"
    );
    assert!(
        sys.hv.trace.query().kind("health").count() >= 1,
        "the suspect transition is traced"
    );
}

/// Only ONE of four netback queues wedges: the domain keeps
/// heartbeating and the other three queues keep consuming, so aggregate
/// ring progress looks healthy — per-queue stall probing is the only
/// detector that can catch it. The watchdog must still declare failure
/// within the probe-schedule bound, recover, and renegotiate all four
/// queues without losing an accepted frame.
#[test]
fn net_watchdog_detects_single_wedged_queue_via_ring_stall() {
    use kite::net::{flow, EtherType, EthernetFrame, IpProto, Ipv4Packet, MacAddr, UdpDatagram};
    use kite_xen::QueueMode;
    let mut sys = SystemConfig::new(BackendOs::Kite, 42)
        .queue_mode(QueueMode::Multi(4))
        .tracing(1 << 16)
        .watchdog(MonitorConfig::default())
        .build_net();
    let received: Rc<RefCell<u64>> = Rc::new(RefCell::new(0));
    let r2 = received.clone();
    sys.set_client_app(Box::new(move |_, _| {
        *r2.borrow_mut() += 1;
        Vec::new()
    }));
    const FLOWS: u64 = 8;
    for i in 0..MSGS {
        sys.send_udp_at(
            Nanos::from_millis(1 + 250 * i),
            Side::Guest,
            addrs::CLIENT,
            9999,
            3000 + (i % FLOWS) as u16,
            vec![i as u8; 1400],
        );
    }
    // Wedge exactly the queue flow 0 steers to, so the frozen ring is
    // guaranteed to keep receiving (and never consuming) requests.
    let udp = UdpDatagram::new(3000, 9999, vec![0u8; 8]);
    let ip = Ipv4Packet::new(
        addrs::GUEST,
        addrs::CLIENT,
        IpProto::Udp,
        udp.encode(addrs::GUEST, addrs::CLIENT),
    );
    let probe_frame = EthernetFrame::new(
        MacAddr::local(9),
        MacAddr::local(8),
        EtherType::Ipv4,
        ip.encode(),
    )
    .encode();
    let q = flow::steer(&probe_frame, 4) as usize;
    sys.wedge_queue_at(Nanos::from_secs(2), q);
    sys.run_to_quiescence();
    assert!(sys.backend_alive(), "backend back up");
    assert_eq!(sys.recovery.reconnects, 1);
    assert_eq!(sys.recovery.crashes, 0, "a wedge is not a kill");
    assert_eq!(sys.recovery.hangs, 0, "a wedge is not a full livelock");
    assert_eq!(sys.queue_count(), 4, "replacement renegotiated every queue");
    let got = *received.borrow();
    assert!(
        got >= MSGS - sys.guest_tx_dropped(),
        "{got} delivered — acked frames lost"
    );
    let span = sys
        .hv
        .trace
        .query()
        .span_between("wedge", "detect")
        .expect("wedge and detect milestones present");
    assert!(span > Nanos::ZERO, "detection takes time");
    assert!(
        span <= MonitorConfig::default().detect_bound(),
        "stall detection latency {span:?} out of bound"
    );
}
