#!/usr/bin/env bash
# Tier-1 verification gate (see ROADMAP.md). Runs fully offline: the
# workspace has no registry dependencies — `criterion` resolves to the
# local shim at crates/criterion — so --offline must always succeed.
#
#   build (release)  ->  tests  ->  clippy -D warnings  ->  fmt --check
#
# Any failure fails the gate.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --release --offline --workspace

echo "==> cargo test --release --offline (libs, bins, tests)"
# Release profile: reuses the build step's artifacts, and the
# simulation-heavy workload tests are ~10x faster than under dev.
cargo test --release --offline -q --workspace --lib --bins --tests

echo "==> examples (build + smoke-run)"
cargo build --release --offline --examples
for ex in examples/*.rs; do
    name="$(basename "${ex%.rs}")"
    "./target/release/examples/${name}" > /dev/null
done

echo "==> cargo clippy --offline -- -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "verify: OK"
