#!/usr/bin/env bash
# Tier-1 verification gate (see ROADMAP.md). Runs fully offline: the
# workspace has no registry dependencies — `criterion` resolves to the
# local shim at crates/criterion — so --offline must always succeed.
#
#   build (release)  ->  tests  ->  clippy -D warnings  ->  fmt --check
#
# Any failure fails the gate.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --release --offline --workspace

echo "==> cargo test --release --offline (libs, bins, tests)"
# Release profile: reuses the build step's artifacts, and the
# simulation-heavy workload tests are ~10x faster than under dev.
cargo test --release --offline -q --workspace --lib --bins --tests

echo "==> examples (build + smoke-run)"
cargo build --release --offline --examples
for ex in examples/*.rs; do
    name="$(basename "${ex%.rs}")"
    "./target/release/examples/${name}" > /dev/null
done

echo "==> tracing: exports validate and are deterministic"
# Each traced run validates its own Chrome-trace export before writing
# (chrome::validate: JSON parses, per-track monotonic timestamps, zero
# dropped events) — a failed validation aborts the example. On top of
# that, same-seed runs must produce byte-identical trace files.
tdir="$(mktemp -d)"
trap 'rm -rf "$tdir"' EXIT
./target/release/examples/quickstart --trace "$tdir/quickstart.json" > /dev/null
./target/release/examples/recovery_trace "$tdir/recovery_a.json" > /dev/null
./target/release/examples/recovery_trace "$tdir/recovery_b.json" > /dev/null
for f in quickstart.json recovery_a.json; do
    [ -s "$tdir/$f" ] || { echo "verify: $f missing or empty" >&2; exit 1; }
done
cmp "$tdir/recovery_a.json" "$tdir/recovery_b.json" \
    || { echo "verify: same-seed traces differ" >&2; exit 1; }

echo "==> multi-queue: per-queue tracks, deterministic trace"
# A 4-queue run must validate its Chrome export (quickstart calls
# chrome::validate before writing), render one synthetic track per
# negotiated queue, and be byte-identical across same-seed runs.
./target/release/examples/quickstart --queues 4 --trace "$tdir/mq_a.json" > /dev/null
./target/release/examples/quickstart --queues 4 --trace "$tdir/mq_b.json" > /dev/null
cmp "$tdir/mq_a.json" "$tdir/mq_b.json" \
    || { echo "verify: same-seed multi-queue traces differ" >&2; exit 1; }
qtracks="$(grep -c '"name":"netbackend/q' "$tdir/mq_a.json")"
[ "$qtracks" -eq 4 ] \
    || { echo "verify: expected 4 per-queue tracks, got $qtracks" >&2; exit 1; }

echo "==> repro --json: machine-readable bench snapshot"
# write_json validates the rendered rows round-trip before writing.
# The snapshot includes the queue-scaling ablation, so the cmp below
# also proves the multi-queue datapath is deterministic end to end.
./target/release/repro --json "$tdir/bench.json" > /dev/null
[ -s "$tdir/bench.json" ] || { echo "verify: bench.json missing or empty" >&2; exit 1; }
./target/release/repro --json "$tdir/bench2.json" > /dev/null
# Wall-clock-derived rows (scheduler throughput, profiler phase times
# and overhead) are nondeterministic by nature; the renderer marks each
# of them "wall":true, so strip by the marker — never by name patterns —
# before the byte comparison.
for j in bench bench2; do
    python3 - "$tdir/$j.json" "$tdir/$j.det.json" <<'EOF'
import json, sys
rows = json.load(open(sys.argv[1]))
det = [r for r in rows if not r.get("wall")]
assert len(det) < len(rows), "expected some wall-marked rows in the snapshot"
json.dump(det, open(sys.argv[2], "w"), sort_keys=True)
EOF
done
cmp "$tdir/bench.det.json" "$tdir/bench2.det.json" \
    || { echo "verify: repro --json output not deterministic" >&2; exit 1; }

echo "==> queue scaling: 4-queue netback must out-drain 1 queue"
# Pull the two throughput rows out of the snapshot and compare; the
# report layer asserts the same invariant, but check the shipped JSON
# so a regression in either layer fails the gate.
python3 - "$tdir/bench.json" <<'EOF'
import json, sys
rows = json.load(open(sys.argv[1]))
tput = {
    r["scenario"]: r["value"]
    for r in rows
    if r["metric"] == "throughput_mbps"
}
q1 = tput["mechanisms/netback_queues_1"]
q4 = tput["mechanisms/netback_queues_4"]
assert q4 > q1, f"netback_queues_4 ({q4}) must beat netback_queues_1 ({q1})"
EOF

echo "==> segmentation offload: GSO and wire-profile rows, shipped snapshot"
# The report layer asserts these when building the rows; re-check the
# checked-in snapshot so a regression in either layer fails the gate.
python3 - BENCH_mechanisms.json <<'PYEOF'
import json, sys
rows = json.load(open(sys.argv[1]))
tput = {
    r["scenario"]: r["value"]
    for r in rows
    if r["metric"] == "throughput_mbps"
}
off = tput["mechanisms/netback_gso_off"]
on = tput["mechanisms/netback_gso_on"]
assert on > off, f"netback_gso_on ({on:.0f}) must beat netback_gso_off ({off:.0f})"
assert on >= 2 * off, (
    f"GSO must at least double single-queue goodput: off={off:.0f} on={on:.0f} mbps"
)
w10 = tput["mechanisms/netback_wire_10g"]
w25 = tput["mechanisms/netback_wire_25g"]
w100 = tput["mechanisms/netback_wire_100g"]
assert w100 > w25 > w10, (
    f"goodput must climb with the line rate: "
    f"10g={w10:.0f} 25g={w25:.0f} 100g={w100:.0f} mbps"
)
q4 = tput["mechanisms/netback_wire_25g_queues_4"]
q8 = tput["mechanisms/netback_wire_25g_queues_8"]
assert q8 > q4, f"netback_wire_25g_queues_8 ({q8:.0f}) must beat queues_4 ({q4:.0f})"
assert q8 > 10_000, f"8 queues on 25GbE must break the 10GbE ceiling: {q8:.0f} mbps"
PYEOF

echo "==> GSO run: deterministic Chrome trace"
# Same-seed multi-queue offload runs must serialize byte-identical
# traces: descriptor-chain framing, extra-info slots and LRO chains are
# all on the determinism surface.
./target/release/examples/quickstart --gso --queues 4 --trace "$tdir/gso_a.json" > /dev/null
./target/release/examples/quickstart --gso --queues 4 --trace "$tdir/gso_b.json" > /dev/null
cmp "$tdir/gso_a.json" "$tdir/gso_b.json" \
    || { echo "verify: same-seed GSO traces differ" >&2; exit 1; }

echo "==> blkback rings: throughput must climb with ring count"
# The report layer asserts the same staircase when building the rows;
# check the shipped JSON too so either layer regressing fails the gate.
python3 - "$tdir/bench.json" <<'EOF'
import json, sys
rows = json.load(open(sys.argv[1]))
tput = {
    r["scenario"]: r["value"]
    for r in rows
    if r["metric"] == "throughput_mbps"
}
r1 = tput["mechanisms/blkback_rings_1"]
r2 = tput["mechanisms/blkback_rings_2"]
r4 = tput["mechanisms/blkback_rings_4"]
assert r4 > r2 > r1, (
    f"blkback rings must scale monotonically: "
    f"rings_1={r1:.0f} rings_2={r2:.0f} rings_4={r4:.0f} mbps"
)
EOF

echo "==> NVMe queue pairs: equivalence + cursor isolation tests"
# Standalone so a queue-pair regression is named explicitly: the shim
# equivalence, the heap/wheel 4-ring byte-identity, and the per-queue
# sequential-cursor isolation property all live in this test binary.
cargo test --release --offline -q -p kite-system --test nvme

echo "==> 4-ring storage: deterministic Chrome trace"
# Same-seed multi-ring storage runs must serialize byte-identical
# traces — each ring has its own NVMe queue pair and MSI-X vector, so
# this proves the multi-queue completion path is deterministic too.
./target/release/examples/storage_domain --rings 4 --trace "$tdir/stor_a.json" > /dev/null
./target/release/examples/storage_domain --rings 4 --trace "$tdir/stor_b.json" > /dev/null
cmp "$tdir/stor_a.json" "$tdir/stor_b.json" \
    || { echo "verify: same-seed 4-ring storage traces differ" >&2; exit 1; }

echo "==> scheduler throughput: wheel must not lose to the heap"
# Wall-clock events/sec on the fleet-drain microbench. The shipped
# BENCH_mechanisms.json records ~5x or better for the wheel; the gate
# only requires wheel >= heap so it stays robust to noisy CI machines.
python3 - "$tdir/bench.json" <<'EOF'
import json, sys
rows = json.load(open(sys.argv[1]))
eps = {
    r["scenario"]: r["value"]
    for r in rows
    if r["metric"] == "events_per_sec"
}
heap = eps["mechanisms/sim_events_per_sec_heap"]
wheel = eps["mechanisms/sim_events_per_sec_wheel"]
assert wheel >= heap, f"timer wheel ({wheel:.0f} ev/s) lost to heap ({heap:.0f} ev/s)"
EOF

echo "==> allocation-free drain: counting-allocator test"
# Re-run the zero-alloc gate on its own so an allocation regression on
# the drain path is named explicitly, not buried in the suite above.
cargo test --release --offline -q -p kite-system --test sched_alloc

echo "==> repro prof: self-time table, collapsed stacks, sampler exports"
# Smoke-run the profiler: the table must attribute self time to the
# instrumented hot paths, and the collapsed stacks must show the
# signature nesting (grant copies inside a netback drain inside IRQ
# dispatch) in flamegraph.pl-consumable `path count` shape.
./target/release/repro prof \
    --collapsed "$tdir/prof_a.folded" \
    --series-csv "$tdir/series_a.csv" \
    --series-json "$tdir/series_a.json" > "$tdir/prof.txt"
grep -q '^netback_tx_drain ' "$tdir/prof.txt" \
    || { echo "verify: prof table missing netback_tx_drain row" >&2; exit 1; }
grep -Eq '^kite;dispatch_irq;netback_tx_drain;grant_copy [0-9]+$' "$tdir/prof_a.folded" \
    || { echo "verify: collapsed stacks missing nested drain path" >&2; exit 1; }
# The sampler rides the virtual-time scheduler, so its exports are part
# of the determinism surface even though the profiler's table is not:
# a second run must reproduce the series byte for byte.
./target/release/repro prof \
    --series-csv "$tdir/series_b.csv" \
    --series-json "$tdir/series_b.json" > /dev/null
cmp "$tdir/series_a.csv" "$tdir/series_b.csv" \
    || { echo "verify: sampler CSV not deterministic" >&2; exit 1; }
cmp "$tdir/series_a.json" "$tdir/series_b.json" \
    || { echo "verify: sampler JSON not deterministic" >&2; exit 1; }

echo "==> profiler overhead: disabled path zero-alloc, enabled < 10%"
# The disabled path is covered by the sched_alloc counting-allocator
# gate above (phase 3 spans every Phase with profiling off). Here:
# the enabled path must cost less than 10% wall time on the echo
# scenario — the sampled-duration design keeps it around 5%.
python3 - "$tdir/bench.json" <<'EOF'
import json, sys
rows = json.load(open(sys.argv[1]))
d = {r["metric"]: r["value"] for r in rows if r["scenario"] == "mechanisms/prof_overhead"}
assert d, "mechanisms/prof_overhead rows missing from bench.json"
assert d["overhead_percent"] < 10, (
    f"profiler overhead {d['overhead_percent']:.1f}% breaches the 10% budget "
    f"(disabled {d['disabled_ns']:.0f}ns, enabled {d['enabled_ns']:.0f}ns)"
)
EOF

echo "==> repro top: kitetop snapshots are byte-identical"
# The watchdog crash-cycle scenario renders from virtual-time state
# only; two runs of the same build must print the same bytes.
./target/release/repro top > "$tdir/top_a.txt"
./target/release/repro top > "$tdir/top_b.txt"
[ -s "$tdir/top_a.txt" ] || { echo "verify: repro top printed nothing" >&2; exit 1; }
cmp "$tdir/top_a.txt" "$tdir/top_b.txt" \
    || { echo "verify: repro top output not deterministic" >&2; exit 1; }

echo "==> repro lat: per-stage waterfalls, flow arrows validated"
# Both canonical scenarios run with request tracing on; each validates
# its flow-annotated Chrome export (flow begin/end pairing included)
# before printing, and every number is virtual-time derived — two runs
# of the same build must print identical bytes.
./target/release/repro lat > "$tdir/lat_a.txt"
./target/release/repro lat > "$tdir/lat_b.txt"
cmp "$tdir/lat_a.txt" "$tdir/lat_b.txt" \
    || { echo "verify: repro lat output not deterministic" >&2; exit 1; }
grep -q '^STAGE ' "$tdir/lat_a.txt" \
    || { echo "verify: lat report missing the stage table" >&2; exit 1; }
for row in grant_copy nvme_complete END_TO_END; do
    grep -q "^$row " "$tdir/lat_a.txt" \
        || { echo "verify: lat report missing $row row" >&2; exit 1; }
done
[ "$(grep -c '^flow validation: OK' "$tdir/lat_a.txt")" -eq 2 ] \
    || { echo "verify: expected 2 flow-validated lat scenarios" >&2; exit 1; }

echo "==> BENCH_mechanisms.json: row schema + wall marking"
# The checked-in snapshot must carry the full row schema (scenario,
# metric, unit, numeric value), mark exactly the wall-clock-derived
# rows "wall":true, and include the latency percentile rows.
python3 - BENCH_mechanisms.json <<'EOF'
import json, sys
rows = json.load(open(sys.argv[1]))
assert rows, "no rows"
for r in rows:
    for k in ("scenario", "metric", "unit"):
        assert isinstance(r.get(k), str), f"row missing {k}: {r}"
    assert isinstance(r.get("value"), (int, float)), f"row missing numeric value: {r}"
wall_prefixes = ("mechanisms/sim_events_per_sec", "mechanisms/prof_")
for r in rows:
    if r["scenario"].startswith(wall_prefixes):
        assert r.get("wall") is True, f"wall-clock row not marked: {r}"
    else:
        assert "wall" not in r, f"deterministic row marked wall: {r}"
lat = {r["metric"] for r in rows if r["scenario"] == "latency/figure7_kite"}
need = {f"{w}_{q}_ms" for w in ("ping", "netperf", "memtier")
        for q in ("mean", "p50", "p99", "p999")}
assert need <= lat, f"latency rows missing: {sorted(need - lat)}"
EOF

echo "==> cargo doc --offline (rustdoc warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --offline --quiet

echo "==> cargo clippy --offline -- -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "verify: OK"
